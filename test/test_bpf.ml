(* Unit tests for the bytecode substrate: registers, program validation,
   assembler, CFG/dominators/loops, and binary encoding. *)
open Kflex_bpf

let reg = Alcotest.testable Reg.pp Reg.equal
let insn = Alcotest.testable Insn.pp Insn.equal

(* --- registers ---------------------------------------------------------- *)

let test_reg_roundtrip () =
  List.iter
    (fun r -> Alcotest.check reg "roundtrip" r (Reg.of_int (Reg.to_int r)))
    Reg.all

let test_reg_of_int_invalid () =
  Alcotest.check_raises "of_int 11" (Invalid_argument "Reg.of_int: 11")
    (fun () -> ignore (Reg.of_int 11));
  Alcotest.check_raises "of_int -1" (Invalid_argument "Reg.of_int: -1")
    (fun () -> ignore (Reg.of_int (-1)))

let test_reg_classes () =
  Alcotest.(check int) "11 regs" 11 (List.length Reg.all);
  Alcotest.(check int) "6 caller-saved" 6 (List.length Reg.caller_saved);
  Alcotest.(check int) "4 callee-saved" 4 (List.length Reg.callee_saved);
  Alcotest.check reg "fp is r10" Reg.R10 Reg.fp

(* --- program validation -------------------------------------------------- *)

let expect_malformed name insns =
  match Prog.create ~name insns with
  | exception Prog.Malformed _ -> ()
  | _ -> Alcotest.failf "%s: expected Malformed" name

let test_prog_empty () = expect_malformed "empty" [||]

let test_prog_fall_off () =
  expect_malformed "fall-off" [| Insn.Mov (Reg.R0, Insn.Imm 0L) |]

let test_prog_bad_target () =
  expect_malformed "bad-target" [| Insn.Ja 5; Insn.Exit |];
  expect_malformed "neg-target" [| Insn.Ja (-2); Insn.Exit |]

let test_prog_fp_write () =
  expect_malformed "fp-write" [| Insn.Mov (Reg.R10, Insn.Imm 0L); Insn.Exit |];
  expect_malformed "fp-ldx" [| Insn.Ldx (Insn.U64, Reg.R10, Reg.R1, 0); Insn.Exit |]

let test_prog_atomic_width () =
  expect_malformed "atomic-u8"
    [| Insn.Atomic (Insn.Atomic_add, Insn.U8, Reg.R1, 0, Reg.R2); Insn.Exit |];
  expect_malformed "atomic-u16"
    [| Insn.Atomic (Insn.Xchg, Insn.U16, Reg.R1, 0, Reg.R2); Insn.Exit |]

let test_prog_offset_range () =
  expect_malformed "off-too-big"
    [| Insn.Ldx (Insn.U64, Reg.R0, Reg.R1, 40000); Insn.Exit |];
  expect_malformed "off-too-small"
    [| Insn.Stx (Insn.U64, Reg.R1, -40000, Reg.R0); Insn.Exit |]

let test_prog_instrumentation_rejected () =
  expect_malformed "guard" [| Insn.Guard (Insn.Gread, Reg.R1); Insn.Exit |];
  expect_malformed "checkpoint" [| Insn.Checkpoint 0; Insn.Exit |];
  expect_malformed "xstore"
    [| Insn.Xstore (Insn.U64, Reg.R1, 0, Reg.R2); Insn.Exit |];
  (* but accepted with the flag *)
  let p =
    Prog.create ~allow_instrumentation:true ~name:"i"
      [| Insn.Guard (Insn.Gread, Reg.R1); Insn.Exit |]
  in
  Alcotest.(check bool) "flagged" true (Prog.is_instrumented p)

let test_prog_accessors () =
  let insns = [| Insn.Mov (Reg.R0, Insn.Imm 7L); Insn.Exit |] in
  let p = Prog.create ~name:"acc" insns in
  Alcotest.(check string) "name" "acc" (Prog.name p);
  Alcotest.(check int) "length" 2 (Prog.length p);
  Alcotest.check insn "get 0" insns.(0) (Prog.get p 0);
  Alcotest.check_raises "get oob" (Invalid_argument "Prog.get: pc 2") (fun () ->
      ignore (Prog.get p 2));
  (* defensive copy: mutating the source array must not affect the program *)
  insns.(0) <- Insn.Exit;
  Alcotest.check insn "copied" (Insn.Mov (Reg.R0, Insn.Imm 7L)) (Prog.get p 0)

(* --- assembler ------------------------------------------------------------ *)

let test_asm_labels () =
  let open Asm in
  let p =
    assemble ~name:"l"
      [
        movi Reg.R0 0L;
        ja "end";
        movi Reg.R0 1L;
        label "end";
        exit_;
      ]
  in
  (* the ja must skip exactly one insn *)
  Alcotest.check insn "resolved" (Insn.Ja 1) (Prog.get p 1)

let test_asm_backward_label () =
  let open Asm in
  let p =
    assemble ~name:"b"
      [
        movi Reg.R1 0L;
        label "loop";
        alui Insn.Add Reg.R1 1L;
        jmpi Insn.Lt Reg.R1 5L "loop";
        movi Reg.R0 0L;
        exit_;
      ]
  in
  Alcotest.check insn "back edge" (Insn.Jcond (Insn.Lt, Reg.R1, Insn.Imm 5L, -2))
    (Prog.get p 2)

let test_asm_duplicate_label () =
  Alcotest.check_raises "dup" (Asm.Error "duplicate label x") (fun () ->
      ignore (Asm.assemble ~name:"d" [ Asm.label "x"; Asm.label "x"; Asm.exit_ ]))

let test_asm_undefined_label () =
  Alcotest.check_raises "undef" (Asm.Error "undefined label nope") (fun () ->
      ignore (Asm.assemble ~name:"u" [ Asm.ja "nope"; Asm.exit_ ]))

(* --- CFG -------------------------------------------------------------------- *)

let diamond () =
  let open Asm in
  assemble ~name:"diamond"
    [
      jmpi Insn.Eq Reg.R1 0L "else";
      movi Reg.R0 1L;
      ja "end";
      label "else";
      movi Reg.R0 2L;
      label "end";
      exit_;
    ]

let test_cfg_blocks () =
  let g = Cfg.build (diamond ()) in
  Alcotest.(check int) "4 blocks" 4 (Array.length (Cfg.blocks g));
  let b0 = (Cfg.blocks g).(0) in
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] b0.Cfg.succs

let test_cfg_dominators () =
  let g = Cfg.build (diamond ()) in
  (* entry dominates everything; the merge block is dominated only by
     itself and the entry *)
  Alcotest.(check bool) "entry dom all" true
    (List.for_all (fun b -> Cfg.dominates g 0 b.Cfg.id) (Array.to_list (Cfg.blocks g)));
  Alcotest.(check bool) "then not dom merge" false (Cfg.dominates g 1 3);
  Alcotest.(check (list int)) "doms of merge" [ 0; 3 ] (Cfg.dominators g 3)

let test_cfg_loop () =
  let open Asm in
  let p =
    assemble ~name:"loop"
      [
        movi Reg.R1 0L;
        label "head";
        alui Insn.Add Reg.R1 1L;
        jmpi Insn.Lt Reg.R1 10L "head";
        movi Reg.R0 0L;
        exit_;
      ]
  in
  let g = Cfg.build p in
  match Cfg.loops g with
  | [ l ] ->
      Alcotest.(check int) "back edge pc" 2 l.Cfg.back_edge_pc;
      Alcotest.(check bool) "header in body" true (List.mem l.Cfg.header l.Cfg.body)
  | ls -> Alcotest.failf "expected 1 loop, got %d" (List.length ls)

let test_cfg_nested_loops () =
  let open Asm in
  let p =
    assemble ~name:"nested"
      [
        movi Reg.R1 0L;
        label "outer";
        movi Reg.R2 0L;
        label "inner";
        alui Insn.Add Reg.R2 1L;
        jmpi Insn.Lt Reg.R2 3L "inner";
        alui Insn.Add Reg.R1 1L;
        jmpi Insn.Lt Reg.R1 3L "outer";
        movi Reg.R0 0L;
        exit_;
      ]
  in
  let g = Cfg.build p in
  let loops = Cfg.loops g in
  Alcotest.(check int) "2 loops" 2 (List.length loops);
  (* innermost first *)
  match loops with
  | [ inner; outer ] ->
      Alcotest.(check bool) "inner smaller" true
        (List.length inner.Cfg.body < List.length outer.Cfg.body)
  | _ -> assert false

let test_cfg_unreachable () =
  let open Asm in
  let p =
    assemble ~name:"unreach"
      [ movi Reg.R0 0L; exit_; movi Reg.R0 1L; exit_ ]
  in
  let g = Cfg.build p in
  Alcotest.(check bool) "b0 reachable" true (Cfg.reachable g 0);
  Alcotest.(check bool) "b1 unreachable" false (Cfg.reachable g 1)

(* --- encoding ----------------------------------------------------------------- *)

let arb_insn =
  let open QCheck in
  let reg_g = Gen.map Reg.of_int (Gen.int_range 0 10) in
  let wreg_g = Gen.map Reg.of_int (Gen.int_range 0 9) in
  let size_g = Gen.oneofl [ Insn.U8; Insn.U16; Insn.U32; Insn.U64 ] in
  let asize_g = Gen.oneofl [ Insn.U32; Insn.U64 ] in
  let off_g = Gen.int_range (-32768) 32767 in
  let imm_g = Gen.map Int64.of_int Gen.int in
  let src_g =
    Gen.oneof [ Gen.map (fun r -> Insn.Reg r) reg_g; Gen.map (fun i -> Insn.Imm i) imm_g ]
  in
  let alu_g =
    Gen.oneofl
      [ Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Mod; Insn.And; Insn.Or;
        Insn.Xor; Insn.Lsh; Insn.Rsh; Insn.Arsh ]
  in
  let cond_g =
    Gen.oneofl
      [ Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le; Insn.Gt; Insn.Ge; Insn.Slt;
        Insn.Sle; Insn.Sgt; Insn.Sge; Insn.Set ]
  in
  let atomic_g =
    Gen.oneofl
      [ Insn.Atomic_add; Insn.Atomic_or; Insn.Atomic_and; Insn.Atomic_xor;
        Insn.Fetch_add; Insn.Fetch_or; Insn.Fetch_and; Insn.Fetch_xor;
        Insn.Xchg; Insn.Cmpxchg ]
  in
  let gen =
    Gen.oneof
      [
        Gen.map3 (fun op d s -> Insn.Alu (op, d, s)) alu_g wreg_g src_g;
        Gen.map (fun d -> Insn.Neg d) wreg_g;
        Gen.map2 (fun d s -> Insn.Mov (d, s)) wreg_g src_g;
        Gen.map3 (fun (sz, d) s off -> Insn.Ldx (sz, d, s, off))
          (Gen.pair size_g wreg_g) reg_g off_g;
        Gen.map3 (fun (sz, d) off s -> Insn.Stx (sz, d, off, s))
          (Gen.pair size_g reg_g) off_g reg_g;
        Gen.map3 (fun (sz, d) off imm -> Insn.St (sz, d, off, imm))
          (Gen.pair size_g reg_g) off_g imm_g;
        Gen.map3 (fun (op, sz) (d, s) off -> Insn.Atomic (op, sz, d, off, s))
          (Gen.pair atomic_g asize_g) (Gen.pair reg_g reg_g) off_g;
        Gen.map (fun off -> Insn.Ja off) Gen.small_signed_int;
        Gen.map3 (fun (c, a) s off -> Insn.Jcond (c, a, s, off))
          (Gen.pair cond_g reg_g) src_g Gen.small_signed_int;
        Gen.map (fun n -> Insn.Call ("helper_" ^ string_of_int n)) Gen.small_nat;
        Gen.return Insn.Exit;
        Gen.map (fun r -> Insn.Guard (Insn.Gread, r)) wreg_g;
        Gen.map (fun r -> Insn.Guard (Insn.Gwrite, r)) wreg_g;
        Gen.map (fun id -> Insn.Checkpoint id) Gen.small_nat;
        Gen.map3 (fun (sz, d) off s -> Insn.Xstore (sz, d, off, s))
          (Gen.pair size_g reg_g) off_g reg_g;
      ]
  in
  make ~print:(Format.asprintf "%a" Insn.pp) gen

let prop_encode_roundtrip =
  QCheck.Test.make ~count:500 ~name:"insn encode/decode roundtrip" arb_insn
    (fun i ->
      let b = Buffer.create 32 in
      Encode.encode_insn b i;
      let decoded, consumed = Encode.decoded_size (Buffer.contents b) 0 in
      Insn.equal i decoded && consumed = Buffer.length b)

let test_encode_program () =
  let p = diamond () in
  let p' = Encode.decode (Encode.encode p) in
  Alcotest.(check string) "name" (Prog.name p) (Prog.name p');
  Alcotest.(check int) "len" (Prog.length p) (Prog.length p');
  Array.iteri
    (fun i x -> Alcotest.check insn "insn" x (Prog.get p' i))
    (Prog.insns p)

let test_decode_garbage () =
  (match Encode.decode "garbage!" with
  | exception Encode.Decode_error _ -> ()
  | _ -> Alcotest.fail "expected Decode_error");
  let good = Encode.encode (diamond ()) in
  let bad = String.sub good 0 (String.length good - 3) in
  match Encode.decode bad with
  | exception Encode.Decode_error _ -> ()
  | _ -> Alcotest.fail "expected Decode_error on truncation"

let () =
  Alcotest.run "bpf"
    [
      ( "reg",
        [
          Alcotest.test_case "roundtrip" `Quick test_reg_roundtrip;
          Alcotest.test_case "of_int invalid" `Quick test_reg_of_int_invalid;
          Alcotest.test_case "classes" `Quick test_reg_classes;
        ] );
      ( "prog",
        [
          Alcotest.test_case "empty" `Quick test_prog_empty;
          Alcotest.test_case "fall-off-end" `Quick test_prog_fall_off;
          Alcotest.test_case "bad jump target" `Quick test_prog_bad_target;
          Alcotest.test_case "fp write" `Quick test_prog_fp_write;
          Alcotest.test_case "atomic width" `Quick test_prog_atomic_width;
          Alcotest.test_case "offset range" `Quick test_prog_offset_range;
          Alcotest.test_case "instrumentation" `Quick
            test_prog_instrumentation_rejected;
          Alcotest.test_case "accessors" `Quick test_prog_accessors;
        ] );
      ( "asm",
        [
          Alcotest.test_case "forward label" `Quick test_asm_labels;
          Alcotest.test_case "backward label" `Quick test_asm_backward_label;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "blocks" `Quick test_cfg_blocks;
          Alcotest.test_case "dominators" `Quick test_cfg_dominators;
          Alcotest.test_case "loop" `Quick test_cfg_loop;
          Alcotest.test_case "nested loops" `Quick test_cfg_nested_loops;
          Alcotest.test_case "unreachable" `Quick test_cfg_unreachable;
        ] );
      ( "encode",
        [
          QCheck_alcotest.to_alcotest prop_encode_roundtrip;
          Alcotest.test_case "program roundtrip" `Quick test_encode_program;
          Alcotest.test_case "garbage" `Quick test_decode_garbage;
        ] );
    ]
