(* Multi-tenant engine tests: hook-chain verdict composition, the
   attach/detach/replace lifecycle with epoch quiescence, the LRU-bounded
   compiled-program cache behind admission, per-shard state isolation,
   shard-count invariance of flow-keyed chains, and single-shard
   equivalence with the one-program facade. *)

open Kflex_kernel
module Engine = Kflex_engine.Engine
module Chain = Kflex_engine.Chain
module Vm = Kflex_runtime.Vm

let compile name src = Kflex_eclang.Compile.compile_string ~name src

let prog_of (c : Kflex_eclang.Compile.compiled) = c.Kflex_eclang.Compile.prog

let globals_of (c : Kflex_eclang.Compile.compiled) =
  c.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size

(* a heapless extension returning a constant verdict *)
let ret_src v = Printf.sprintf "fn prog(c: ctx) -> u64 { return %d; }" v

let attach_exn ?name ?globals_size ?heap_size ?configure eng prog =
  match
    Engine.attach eng ?name ?globals_size ?heap_size ?configure ~hook:Hook.Xdp
      prog
  with
  | Ok h -> h
  | Error e ->
      Alcotest.failf "attach rejected: %a" Kflex_verifier.Verify.pp_error e

let attach_ret eng v =
  let name = Printf.sprintf "ret%d" v in
  (* even a constant-return program needs a (tiny) heap: instrumentation
     polls the terminate word at heap offset 0 *)
  attach_exn ~name ~heap_size:4096L eng (prog_of (compile name (ret_src v)))

let pkt ?(src_port = 1) ?(dst_port = 2) ?(payload = Bytes.make 17 '\000') () =
  Packet.make ~proto:Packet.Udp ~src_port ~dst_port payload

(* --- verdict composition ------------------------------------------------ *)

let t_chain_composition () =
  let eng = Engine.create () in
  (* empty chain: the hook's pass verdict, nothing ran *)
  let r = Engine.run_packet eng (pkt ()) in
  Alcotest.(check int64) "empty = pass" Hook.xdp_pass r.Engine.verdict;
  Alcotest.(check int) "none ran" 0 r.Engine.executed;
  (* pass falls through; the first non-pass verdict wins and stops *)
  let _a = attach_ret eng 2 in
  let _b = attach_ret eng 3 in
  let _c = attach_ret eng 1 in
  Alcotest.(check int) "chain length" 3 (Engine.chain_length eng Hook.Xdp);
  let r = Engine.run_packet eng (pkt ()) in
  Alcotest.(check int64) "first non-pass wins" Hook.xdp_tx r.Engine.verdict;
  Alcotest.(check int) "stopped at tx" 2 r.Engine.executed;
  Alcotest.(check int) "outcomes per ran entry" 2
    (List.length r.Engine.outcomes);
  (* all-pass chain runs every entry *)
  let eng2 = Engine.create () in
  let _ = attach_ret eng2 2 and _ = attach_ret eng2 2 in
  let r2 = Engine.run_packet eng2 (pkt ()) in
  Alcotest.(check int64) "all pass" Hook.xdp_pass r2.Engine.verdict;
  Alcotest.(check int) "both ran" 2 r2.Engine.executed

let t_chain_module () =
  (* the pure chain structure underneath the registry *)
  let c = Chain.empty in
  Alcotest.(check int) "gen 0" 0 (Chain.generation c);
  let c = Chain.attach c Hook.Xdp "a" in
  let c = Chain.attach c Hook.Xdp "b" in
  let c = Chain.attach c Hook.Lsm "l" in
  Alcotest.(check int) "xdp len" 2 (Chain.length c Hook.Xdp);
  Alcotest.(check int) "lsm len" 1 (Chain.length c Hook.Lsm);
  Alcotest.(check int) "3 mutations" 3 (Chain.generation c);
  let c', removed = Chain.detach c Hook.Xdp (fun x -> x = "a") in
  Alcotest.(check (list string)) "removed" [ "a" ] removed;
  Alcotest.(check int) "shrunk" 1 (Chain.length c' Hook.Xdp);
  Alcotest.(check int) "gen bumped" 4 (Chain.generation c');
  (* detaching a missing entry does not publish a new generation *)
  let c'', removed' = Chain.detach c' Hook.Xdp (fun x -> x = "zzz") in
  Alcotest.(check (list string)) "nothing removed" [] removed';
  Alcotest.(check int) "gen unchanged" 4 (Chain.generation c'');
  let c3, old = Chain.replace c' Hook.Xdp (fun x -> x = "b") "b2" in
  Alcotest.(check (option string)) "replaced" (Some "b") old;
  Alcotest.(check int) "same arity" 1 (Chain.length c3 Hook.Xdp);
  (* verdict fall-through rule *)
  Alcotest.(check bool) "xdp pass continues" true
    (Chain.continue_on Hook.Xdp Hook.xdp_pass);
  Alcotest.(check bool) "xdp drop stops" false
    (Chain.continue_on Hook.Xdp Hook.xdp_drop);
  Alcotest.(check bool) "lsm 0 continues" true (Chain.continue_on Hook.Lsm 0L)

(* --- attach / detach / replace lifecycle -------------------------------- *)

let t_lifecycle_epochs () =
  let eng = Engine.create ~shards:2 () in
  let e0 = Engine.epoch eng in
  let a = attach_ret eng 2 in
  let b = attach_ret eng 1 in
  Alcotest.(check bool) "attach bumps epoch" true (Engine.epoch eng > e0);
  Alcotest.(check int) "two attached" 2 (Engine.chain_length eng Hook.Xdp);
  let r = Engine.run_packet eng (pkt ()) in
  Alcotest.(check int64) "drop wins" Hook.xdp_drop r.Engine.verdict;
  (* replace the dropper with a passer in place *)
  let e1 = Engine.epoch eng in
  let b' =
    match
      Engine.replace eng b ~name:"ret2'" ~heap_size:4096L
        (prog_of (compile "ret2'" (ret_src 2)))
    with
    | Ok h -> h
    | Error e -> Alcotest.failf "replace: %a" Kflex_verifier.Verify.pp_error e
  in
  Alcotest.(check bool) "replace bumps epoch" true (Engine.epoch eng > e1);
  Alcotest.(check int) "arity kept" 2 (Engine.chain_length eng Hook.Xdp);
  let r = Engine.run_packet eng (pkt ()) in
  Alcotest.(check int64) "now passes" Hook.xdp_pass r.Engine.verdict;
  Alcotest.(check int) "both ran" 2 r.Engine.executed;
  (* detach is idempotent *)
  Engine.detach eng a;
  Engine.detach eng a;
  Alcotest.(check int) "one left" 1 (Engine.chain_length eng Hook.Xdp);
  Engine.detach eng b';
  Alcotest.(check int) "empty" 0 (Engine.chain_length eng Hook.Xdp);
  Alcotest.(check int) "no socket refs after teardown" 0
    (Engine.socket_refs eng)

(* --- the LRU-bounded compiled-program cache ----------------------------- *)

let t_jit_cache_lru () =
  let restore = (Kflex.jit_cache_stats ()).Kflex.capacity in
  Fun.protect
    ~finally:(fun () -> Kflex.set_jit_cache_capacity restore)
    (fun () ->
      Kflex.set_jit_cache_capacity 3;
      Alcotest.(check bool) "capped at 3" true
        ((Kflex.jit_cache_stats ()).Kflex.entries <= 3);
      let admit_ret i =
        let name = Printf.sprintf "cache%d" i in
        match
          Kflex.admit ~backend:`Compiled ~heap_size:4096L ~hook:Hook.Xdp
            (prog_of (compile name (ret_src (100 + i))))
        with
        | Ok a -> a
        | Error e ->
            Alcotest.failf "admit: %a" Kflex_verifier.Verify.pp_error e
      in
      let s0 = Kflex.jit_cache_stats () in
      (* more distinct programs than the capacity *)
      for i = 0 to 5 do
        ignore (admit_ret i)
      done;
      let s1 = Kflex.jit_cache_stats () in
      Alcotest.(check int) "all missed" (s0.Kflex.misses + 6) s1.Kflex.misses;
      Alcotest.(check bool) "bounded" true (s1.Kflex.entries <= 3);
      Alcotest.(check bool) "evicted" true
        (s1.Kflex.evictions >= s0.Kflex.evictions + 3);
      (* the most recent program is still cached ... *)
      ignore (admit_ret 5);
      let s2 = Kflex.jit_cache_stats () in
      Alcotest.(check int) "hit" (s1.Kflex.hits + 1) s2.Kflex.hits;
      (* ... and the oldest was evicted, so it misses again *)
      ignore (admit_ret 0);
      let s3 = Kflex.jit_cache_stats () in
      Alcotest.(check int) "stale missed" (s2.Kflex.misses + 1) s3.Kflex.misses;
      (* shrinking the capacity evicts down immediately *)
      Kflex.set_jit_cache_capacity 1;
      Alcotest.(check bool) "evicts down" true
        ((Kflex.jit_cache_stats ()).Kflex.entries <= 1);
      Alcotest.check_raises "capacity >= 1"
        (Invalid_argument "Kflex.set_jit_cache_capacity") (fun () ->
          Kflex.set_jit_cache_capacity 0))

(* --- per-shard state ---------------------------------------------------- *)

(* flow-keyed per-shard counter: counts per flow must not depend on how
   flows are sharded, so aggregate verdicts are shard-count invariant *)
let counter_src = {|
struct node { key: u64; count: u64; next: ptr<node>; }
global buckets: [ptr<node>; 64];

fn bump(k: u64) -> u64 {
  var b: u64 = k & 63;
  var n: ptr<node> = buckets[b];
  while (n != null) {
    if (n.key == k) { n.count = n.count + 1; return n.count; }
    n = n.next;
  }
  var m: ptr<node> = new node;
  if (m == null) { return 0; }
  m.key = k;
  m.count = 1;
  m.next = buckets[b];
  buckets[b] = m;
  return 1;
}

fn prog(c: ctx) -> u64 {
  var flow: u64 = pkt_read_u64(c, 1);
  var n: u64 = bump(flow);
  if (n > 5) { return 1; }
  return 2;
}
|}

let flow_packets ~events =
  let rng = Kflex_workload.Rng.create ~seed:3L in
  Array.init events (fun _ ->
      let flow = Kflex_workload.Rng.int rng 40 in
      let b = Bytes.make 17 '\000' in
      Bytes.set_int64_le b 1 (Int64.of_int flow);
      pkt ~src_port:(1024 + (flow * 131)) ~payload:b ())

let attach_counter eng =
  let c = compile "counter" counter_src in
  attach_exn ~name:"counter" ~globals_size:(globals_of c)
    ~heap_size:(Int64.shift_left 1L 16)
    eng (prog_of c)

let t_shard_invariance () =
  let run shards =
    let eng = Engine.create ~shards () in
    let _ = attach_counter eng in
    let pkts = flow_packets ~events:600 in
    Array.iter (fun p -> ignore (Engine.run_packet eng p)) pkts;
    (eng, Engine.totals eng)
  in
  let eng3, t3 = run 3 in
  let _, t1 = run 1 in
  Alcotest.(check bool) "histograms equal" true
    (t3.Engine.verdicts = t1.Engine.verdicts);
  Alcotest.(check int) "all events" 600 t3.Engine.events;
  Alcotest.(check int) "no leaks" 0 t3.Engine.leaked;
  (* placement is the flow hash: per-shard counts sum to the total and more
     than one shard did work *)
  let per = List.init 3 (fun s -> Engine.shard_events eng3 s) in
  Alcotest.(check int) "events partitioned" 600
    (List.fold_left ( + ) 0 per);
  Alcotest.(check bool) "spread across shards" true
    (List.length (List.filter (fun n -> n > 0) per) > 1);
  (* read-side totals merge the per-shard stats exactly *)
  let insns s = s.Vm.insns and guards s = s.Vm.guards in
  Alcotest.(check int) "stats merged (insns)"
    (List.fold_left ( + ) 0
       (List.init 3 (fun s -> insns (Engine.shard_stats eng3 s))))
    (insns t3.Engine.stats);
  Alcotest.(check int) "stats merged (guards)"
    (List.fold_left ( + ) 0
       (List.init 3 (fun s -> guards (Engine.shard_stats eng3 s))))
    (guards t3.Engine.stats)

(* single-shard engine vs the one-program facade, same program and inputs:
   verdicts, costs and stats must be identical *)
let t_facade_equivalence () =
  let kind = Kflex_apps.Datastructs.Hashmap in
  let c =
    compile "hashmap_eq" (Kflex_apps.Datastructs.source kind)
  in
  (* facade *)
  let inst = Kflex_apps.Datastructs.create kind in
  (* engine, same source attached on one shard *)
  let eng = Engine.create ~shards:1 () in
  let _ =
    attach_exn ~name:"hashmap" ~globals_size:(globals_of c)
      ~heap_size:(Int64.shift_left 1L 24)
      eng (prog_of c)
  in
  let stats_f = Vm.fresh_stats () in
  let check_op ~op ~key ~value =
    let p = Kflex_apps.Datastructs.op_packet ~op ~key ~value in
    let vf =
      match
        Kflex.run_packet (Kflex_apps.Datastructs.loaded inst) ~stats:stats_f p
      with
      | Vm.Finished v -> v
      | Vm.Cancelled _ -> Alcotest.fail "facade op cancelled"
    in
    let r = Engine.run_packet eng p in
    Alcotest.(check int64)
      (Printf.sprintf "op %d key %Ld" op key)
      vf r.Engine.verdict
  in
  for i = 0 to 63 do
    check_op ~op:0 ~key:(Int64.of_int i) ~value:(Int64.of_int (i * 7))
  done;
  for i = 0 to 63 do
    check_op ~op:1 ~key:(Int64.of_int i) ~value:0L
  done;
  for i = 0 to 15 do
    check_op ~op:2 ~key:(Int64.of_int (i * 4)) ~value:0L
  done;
  let se = Engine.shard_stats eng 0 in
  Alcotest.(check int) "same insns" stats_f.Vm.insns se.Vm.insns;
  Alcotest.(check int) "same guards" stats_f.Vm.guards se.Vm.guards;
  Alcotest.(check int) "same checkpoints" stats_f.Vm.checkpoints
    se.Vm.checkpoints;
  Alcotest.(check int) "same helper cost" stats_f.Vm.helper_cost
    se.Vm.helper_cost

(* --- threaded mode ------------------------------------------------------ *)

let t_threaded_smoke () =
  let eng = Engine.create ~shards:2 ~mode:`Threaded () in
  let _ = attach_counter eng in
  let pkts = flow_packets ~events:400 in
  Array.iter (fun p -> Engine.submit eng p) pkts;
  Engine.drain eng;
  let t = Engine.totals eng in
  Engine.shutdown eng;
  Alcotest.(check int) "all drained" 400 t.Engine.events;
  Alcotest.(check int) "no leaks" 0 t.Engine.leaked;
  (* flow-keyed verdicts match a deterministic single-shard run *)
  let det = Engine.create ~shards:1 () in
  let _ = attach_counter det in
  Array.iter (fun p -> ignore (Engine.run_packet det p)) pkts;
  Alcotest.(check bool) "threaded = deterministic histogram" true
    ((Engine.totals det).Engine.verdicts = t.Engine.verdicts)

(* --- engine-shared maps ------------------------------------------------- *)

(* read-modify-write of a spin-locked shared counter: the whole increment
   runs inside the bpf_map_lock critical section, so per-key totals must
   equal the number of successful lock acquisitions even under real
   cross-domain contention *)
let shared_counter_src = {|
fn prog(c: ctx) -> u64 {
  var kbuf: bytes[8];
  var vbuf: bytes[8];
  st64(&kbuf, 0, pkt_read_u16(c, 0) & 7);
  var h: u64 = bpf_map_lock(3, &kbuf);
  if (h == 0) { return 1; }
  var n: u64 = 0;
  if (bpf_map_lookup(3, &kbuf, &vbuf) == 1) { n = ld64(&vbuf, 0); }
  st64(&vbuf, 0, n + 1);
  bpf_map_update(3, &kbuf, &vbuf);
  bpf_map_unlock(h);
  return 2;
}
|}

let attach_shared_counter eng =
  let c = compile "shared_counter" shared_counter_src in
  attach_exn ~name:"shared_counter" ~globals_size:(globals_of c)
    ~heap_size:4096L eng (prog_of c)

(* the programs above key on the first payload u16; vary the port too so
   flow hashing spreads events across shards *)
let key_pkt k =
  let b = Bytes.make 17 '\000' in
  Bytes.set_uint16_le b 0 (k land 0xFFFF);
  pkt ~src_port:(1 + (k * 131 mod 4096)) ~payload:b ()

let t_share_map_fds () =
  let eng = Engine.create ~shards:2 () in
  let spin = Map.create ~kind:Map.Spinlock ~max_entries:64 () in
  let rcu = Map.create ~kind:Map.Rcu_shared ~cpus:2 ~max_entries:64 () in
  let fd_spin = Engine.share_map eng spin in
  let fd_rcu = Engine.share_map eng rcu in
  Alcotest.(check int64) "first shared fd is 3" 3L fd_spin;
  Alcotest.(check int64) "second shared fd is 4" 4L fd_rcu;
  Alcotest.(check bool) "share order" true
    (Engine.shared_maps eng == [ spin; rcu ]
    || Engine.shared_maps eng = [ spin; rcu ]);
  let _ = attach_shared_counter eng in
  (* updates through the fd land in the map object we handed over *)
  for i = 0 to 15 do
    ignore (Engine.run_packet eng (key_pkt i))
  done;
  let total = List.fold_left (fun a (_, v) -> Int64.add a v) 0L (Map.to_list spin) in
  Alcotest.(check int64) "all increments in the shared map" 16L total;
  Alcotest.(check bool) "no lock left held" true
    (List.for_all (fun (k, _) -> not (Map.lock_held spin k)) (Map.to_list spin))

let t_shared_counter_threaded () =
  (* the linearizability check under real contention: 4 domains, 8 hot
     keys, every successful lock acquisition is one increment *)
  let eng = Engine.create ~shards:4 ~mode:`Threaded () in
  let spin = Map.create ~kind:Map.Spinlock ~max_entries:64 () in
  ignore (Engine.share_map eng spin);
  let _ = attach_shared_counter eng in
  let events = 800 in
  for i = 0 to events - 1 do
    Engine.submit eng (key_pkt i)
  done;
  Engine.drain eng;
  let t = Engine.totals eng in
  Engine.shutdown eng;
  Alcotest.(check int) "all events ran" events t.Engine.events;
  Alcotest.(check int) "no leaks" 0 t.Engine.leaked;
  let passes =
    try List.assoc 2L t.Engine.verdicts with Not_found -> 0
  in
  let drops = try List.assoc 1L t.Engine.verdicts with Not_found -> 0 in
  Alcotest.(check int) "every event passed or dropped" events (passes + drops);
  let total = List.fold_left (fun a (_, v) -> Int64.add a v) 0L (Map.to_list spin) in
  Alcotest.(check int64) "counter = successful acquisitions"
    (Int64.of_int passes) total;
  Alcotest.(check bool) "no lock left held" true
    (List.for_all
       (fun k -> not (Map.lock_held spin (Int64.of_int k)))
       [ 0; 1; 2; 3; 4; 5; 6; 7 ])

(* cancellation landing inside the critical section: the reaper fires while
   the lock is held, and the unwind must release it and leak nothing *)
let t_cancel_in_critical_section () =
  let slow_src = {|
fn prog(c: ctx) -> u64 {
  var kbuf: bytes[8];
  st64(&kbuf, 0, 0);
  var h: u64 = bpf_map_lock(3, &kbuf);
  if (h == 0) { return 1; }
  var i: u64 = 0;
  while (i < 1000000) { i = i + 1; }
  bpf_map_unlock(h);
  return 2;
}
|}
  in
  let eng = Engine.create ~shards:2 () in
  let spin = Map.create ~kind:Map.Spinlock ~max_entries:8 () in
  ignore (Engine.share_map eng spin);
  let c = compile "slow_lock" slow_src in
  (match
     Engine.attach eng ~name:"slow_lock" ~globals_size:(globals_of c)
       ~heap_size:4096L ~quantum:2000 ~hook:Hook.Xdp (prog_of c)
   with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "attach rejected: %a" Kflex_verifier.Verify.pp_error e);
  for i = 0 to 7 do
    ignore (Engine.run_packet eng (key_pkt i))
  done;
  let t = Engine.totals eng in
  Alcotest.(check bool) "quantum fired" true (t.Engine.cancelled > 0);
  Alcotest.(check int) "no ledger leaks" 0 t.Engine.leaked;
  Alcotest.(check bool) "lock released by the unwind" false
    (Map.lock_held spin 0L);
  Alcotest.(check int) "no socket refs" 0 (Engine.socket_refs eng)

(* replace semantics: engine-shared maps persist at the same fds across a
   replace; maps registered by the old attachment's [configure] do not —
   the replacement's configure starts from a fresh registry (shared maps
   first, so private fds land after theirs, here at 5) *)
let t_replace_shared_persists () =
  let persist_src = {|
fn prog(c: ctx) -> u64 {
  var kbuf: bytes[8];
  var vbuf: bytes[8];
  st64(&kbuf, 0, pkt_read_u16(c, 0));
  st64(&vbuf, 0, 1);
  bpf_map_update(4, &kbuf, &vbuf);
  st64(&kbuf, 0, 0);
  var v: u64 = 0;
  if (bpf_map_lookup(5, &kbuf, &vbuf) == 1) { v = ld64(&vbuf, 0); }
  return v;
}
|}
  in
  let eng = Engine.create ~shards:2 () in
  let spin = Map.create ~kind:Map.Spinlock ~max_entries:8 () in
  let rcu = Map.create ~kind:Map.Rcu_shared ~cpus:2 ~max_entries:64 () in
  ignore (Engine.share_map eng spin);
  ignore (Engine.share_map eng rcu);
  let c = compile "persist" persist_src in
  let configure tag ~shard:_ kernel _heap =
    let m = Map.create ~max_entries:8 () in
    ignore (Map.update m 0L tag);
    ignore (Map.register (Helpers.maps kernel) m)
  in
  let h =
    attach_exn ~name:"persist" ~globals_size:(globals_of c) ~heap_size:4096L
      ~configure:(configure 7L) eng (prog_of c)
  in
  let r = Engine.run_packet eng (key_pkt 100) in
  Alcotest.(check int64) "private map visible at fd 5" 7L r.Engine.verdict;
  Alcotest.(check bool) "rcu entry written" true
    (Map.merged rcu 100L <> None);
  let v0 = (Option.get (Map.rcu_stats rcu)).Map.version in
  let h' =
    match
      Engine.replace eng h ~name:"persist2" ~globals_size:(globals_of c)
        ~heap_size:4096L ~configure:(configure 9L) (prog_of c)
    with
    | Ok h -> h
    | Error e -> Alcotest.failf "replace: %a" Kflex_verifier.Verify.pp_error e
  in
  ignore h';
  let r = Engine.run_packet eng (key_pkt 200) in
  (* the replacement sees its own private map (old fd-5 data is gone) ... *)
  Alcotest.(check int64) "fresh private map after replace" 9L r.Engine.verdict;
  (* ... while the engine-shared RCU map persisted at fd 4 with its data *)
  Alcotest.(check bool) "old shared entry survives" true
    (Map.merged rcu 100L <> None);
  Alcotest.(check bool) "new shared entry lands" true
    (Map.merged rcu 200L <> None);
  Alcotest.(check bool) "rcu kept publishing" true
    ((Option.get (Map.rcu_stats rcu)).Map.version > v0);
  (* registry quiescence at replace ran a full grace period: nothing
     retired from before the swap is still pending *)
  Engine.detach eng h';
  Alcotest.(check int) "retired drained at quiescence" 0
    (Option.get (Map.rcu_stats rcu)).Map.retired

let () =
  Alcotest.run "engine"
    [
      ( "chain",
        [
          Alcotest.test_case "verdict composition" `Quick t_chain_composition;
          Alcotest.test_case "chain structure" `Quick t_chain_module;
          Alcotest.test_case "lifecycle + epochs" `Quick t_lifecycle_epochs;
        ] );
      ( "cache",
        [ Alcotest.test_case "LRU bound + eviction" `Quick t_jit_cache_lru ] );
      ( "shards",
        [
          Alcotest.test_case "shard-count invariance" `Quick t_shard_invariance;
          Alcotest.test_case "facade equivalence" `Quick t_facade_equivalence;
          Alcotest.test_case "threaded smoke" `Quick t_threaded_smoke;
        ] );
      ( "shared maps",
        [
          Alcotest.test_case "share_map fds" `Quick t_share_map_fds;
          Alcotest.test_case "threaded shared counter" `Quick
            t_shared_counter_threaded;
          Alcotest.test_case "cancel in critical section" `Quick
            t_cancel_in_critical_section;
          Alcotest.test_case "replace keeps shared maps" `Quick
            t_replace_shared_persists;
        ] );
    ]
