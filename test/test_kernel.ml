(* Kernel substrate tests: packets, sockets, maps, hooks, cost model. *)
open Kflex_kernel

let t_packet_rw () =
  let p = Packet.make ~proto:Packet.Udp ~src_port:1 ~dst_port:2 (Bytes.make 16 '\000') in
  Packet.write p ~width:4 4 0xAABBCCDDL;
  Alcotest.(check int64) "read back" 0xAABBCCDDL (Packet.read p ~width:4 4);
  Alcotest.(check int64) "low byte" 0xDDL (Packet.read p ~width:1 4);
  Alcotest.(check int) "len" 16 (Packet.len p)

let t_packet_bounds () =
  let p = Packet.make ~proto:Packet.Tcp ~src_port:1 ~dst_port:2 (Bytes.make 8 '\255') in
  Alcotest.(check int64) "past end" 0L (Packet.read p ~width:8 4);
  Alcotest.(check int64) "negative" 0L (Packet.read p ~width:1 (-1));
  Packet.write p ~width:8 4 1L (* must be a no-op *);
  Alcotest.(check int64) "unchanged" 0xFFFFFFFFL (Packet.read p ~width:4 4)

let t_sockets () =
  let s = Socket.create () in
  Socket.listen s ~proto:Packet.Udp ~port:53;
  Alcotest.(check bool) "no tcp:53" true (Socket.lookup s ~proto:Packet.Tcp ~port:53 = None);
  let h1 = Option.get (Socket.lookup s ~proto:Packet.Udp ~port:53) in
  let h2 = Option.get (Socket.lookup s ~proto:Packet.Udp ~port:53) in
  Alcotest.(check int64) "same handle" h1 h2;
  Alcotest.(check (option int)) "two refs" (Some 2) (Socket.refcount s ~proto:Packet.Udp ~port:53);
  Alcotest.(check bool) "release" true (Socket.release s h1);
  Alcotest.(check int) "total" 1 (Socket.total_refs s);
  Alcotest.(check bool) "release" true (Socket.release s h1);
  Alcotest.(check bool) "over-release" false (Socket.release s h1);
  Socket.close s ~proto:Packet.Udp ~port:53;
  Alcotest.(check bool) "closed" true (Socket.lookup s ~proto:Packet.Udp ~port:53 = None)

let t_maps () =
  let m = Map.create ~max_entries:2 () in
  Alcotest.(check bool) "upd1" true (Map.update m 1L 10L);
  Alcotest.(check bool) "upd2" true (Map.update m 2L 20L);
  Alcotest.(check bool) "full" false (Map.update m 3L 30L);
  Alcotest.(check bool) "replace ok" true (Map.update m 1L 11L);
  Alcotest.(check (option int64)) "get" (Some 11L) (Map.lookup m 1L);
  Alcotest.(check bool) "del" true (Map.delete m 1L);
  Alcotest.(check bool) "del again" false (Map.delete m 1L);
  Alcotest.(check int) "entries" 1 (Map.entries m);
  (* registry *)
  let r = Map.registry () in
  let fd = Map.register r m in
  Alcotest.(check bool) "found" true (Map.find r fd <> None);
  Alcotest.(check bool) "unknown fd" true (Map.find r 999L = None)

let t_hook_ctx () =
  let p = Packet.make ~proto:Packet.Tcp ~src_port:1234 ~dst_port:80 (Bytes.make 100 '\000') in
  let ctx = Hook.build_ctx p in
  Alcotest.(check int) "size" Hook.ctx_size (Bytes.length ctx);
  Alcotest.(check int32) "len" 100l (Bytes.get_int32_le ctx 0);
  Alcotest.(check int32) "proto" 1l (Bytes.get_int32_le ctx 4);
  Alcotest.(check int) "sport" 1234 (Bytes.get_uint16_le ctx 8);
  Alcotest.(check int) "dport" 80 (Bytes.get_uint16_le ctx 10)

let t_hook_defaults () =
  Alcotest.(check int64) "xdp passes" Hook.xdp_pass (Hook.default_ret Hook.Xdp);
  Alcotest.(check int64) "skb passes" 0L (Hook.default_ret Hook.Sk_skb);
  Alcotest.(check int64) "lsm denies" (-1L) (Hook.default_ret Hook.Lsm);
  Alcotest.(check bool) "lsm sleepable" true (Hook.sleepable Hook.Lsm);
  Alcotest.(check bool) "xdp not" false (Hook.sleepable Hook.Xdp)

let t_cost_ordering () =
  (* the structural claim behind every end-to-end figure *)
  let compute_ns = 1000. in
  let xdp = Cost.xdp_service_ns ~compute_ns ~reply:true in
  let skb = Cost.skb_service_ns ~proto_tcp:true ~compute_ns in
  let usr_udp = Cost.user_service_ns ~proto_tcp:false ~compute_ns in
  let usr_tcp = Cost.user_service_ns ~proto_tcp:true ~compute_ns in
  Alcotest.(check bool) "xdp < skb" true (xdp < skb);
  Alcotest.(check bool) "skb < user" true (skb < usr_tcp);
  Alcotest.(check bool) "udp user < tcp user" true (usr_udp < usr_tcp);
  Alcotest.(check bool) "compute monotone" true
    (Cost.xdp_service_ns ~compute_ns:2000. ~reply:true > xdp)

(* Regression (found by the differential fuzzer): [off + width] in the
   packet bounds check overflowed for offsets near [max_int], turning a wild
   read into a Bytes exception; and 64-bit helper offsets were truncated
   before checking. *)
let t_packet_offset_overflow () =
  let p = Packet.make ~proto:Packet.Udp ~src_port:1 ~dst_port:2 (Bytes.make 8 '\042') in
  Alcotest.(check int64) "max_int read" 0L (Packet.read p ~width:8 max_int);
  Alcotest.(check int64) "near-max read" 0L (Packet.read p ~width:2 (max_int - 4));
  Packet.write p ~width:8 max_int 7L;
  Packet.write p ~width:4 (max_int - 2) 7L;
  Alcotest.(check int64) "unchanged" 0x2a2a2a2a2a2a2a2aL (Packet.read p ~width:8 0)

(* The cost model's structural claims, on a grid: every layered deployment
   is monotone in compute, and adding a layer never makes a request
   cheaper. These orderings are what every end-to-end figure rests on. *)
let t_cost_monotone_grid () =
  let computes = [ 0.; 100.; 500.; 1_000.; 2_000.; 4_000.; 10_000. ] in
  let check_mono name f =
    ignore
      (List.fold_left
         (fun prev c ->
           let v = f c in
           Alcotest.(check bool)
             (Printf.sprintf "%s monotone at %g" name c)
             true (v >= prev);
           v)
         neg_infinity computes)
  in
  check_mono "xdp reply" (fun c -> Cost.xdp_service_ns ~compute_ns:c ~reply:true);
  check_mono "xdp drop" (fun c -> Cost.xdp_service_ns ~compute_ns:c ~reply:false);
  check_mono "skb udp" (fun c -> Cost.skb_service_ns ~proto_tcp:false ~compute_ns:c);
  check_mono "skb tcp" (fun c -> Cost.skb_service_ns ~proto_tcp:true ~compute_ns:c);
  check_mono "user udp" (fun c -> Cost.user_service_ns ~proto_tcp:false ~compute_ns:c);
  check_mono "user tcp" (fun c -> Cost.user_service_ns ~proto_tcp:true ~compute_ns:c);
  List.iter
    (fun c ->
      let xdp = Cost.xdp_service_ns ~compute_ns:c ~reply:false in
      let skb_u = Cost.skb_service_ns ~proto_tcp:false ~compute_ns:c in
      let skb_t = Cost.skb_service_ns ~proto_tcp:true ~compute_ns:c in
      let usr_u = Cost.user_service_ns ~proto_tcp:false ~compute_ns:c in
      let usr_t = Cost.user_service_ns ~proto_tcp:true ~compute_ns:c in
      Alcotest.(check bool) "xdp <= skb (udp)" true (xdp <= skb_u);
      Alcotest.(check bool) "skb <= user (udp)" true (skb_u <= usr_u);
      Alcotest.(check bool) "skb <= user (tcp)" true (skb_t <= usr_t);
      Alcotest.(check bool) "udp <= tcp at skb" true (skb_u <= skb_t);
      Alcotest.(check bool) "udp <= tcp at user" true (usr_u <= usr_t);
      Alcotest.(check bool) "reply costs" true
        (Cost.xdp_service_ns ~compute_ns:c ~reply:true >= xdp))
    computes;
  (* the layer gaps match their published building blocks *)
  let gap =
    Cost.user_service_ns ~proto_tcp:false ~compute_ns:0.
    -. Cost.skb_service_ns ~proto_tcp:false ~compute_ns:0.
  in
  Alcotest.(check bool) "user gap is the boundary cost" true
    (gap >= Cost.syscall_ns);
  Alcotest.(check bool) "sane constants" true
    (Cost.insn_ns > 0. && Cost.native_speedup >= 1.
    && Cost.nic_to_xdp_ns > 0. && Cost.udp_stack_ns < Cost.tcp_stack_ns)

(* Compute units -> ns conversion is linear in the measured cost. *)
let t_cost_insn_linear () =
  let base = Cost.xdp_service_ns ~compute_ns:0. ~reply:true in
  List.iter
    (fun units ->
      let c = float_of_int units *. Cost.insn_ns in
      let v = Cost.xdp_service_ns ~compute_ns:c ~reply:true in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "%d units" units)
        (base +. c) v)
    [ 1; 10; 1_000; 250_000 ]

(* --- map kinds ---------------------------------------------------------- *)

let t_map_array () =
  let m = Map.create ~kind:Map.Array ~max_entries:4 () in
  Alcotest.(check bool) "in range" true (Map.update m 3L 30L);
  Alcotest.(check bool) "out of range" false (Map.update m 4L 40L);
  Alcotest.(check bool) "negative" false (Map.update m (-1L) 1L);
  Alcotest.(check (option int64)) "get" (Some 30L) (Map.lookup m 3L);
  Alcotest.(check bool) "no delete" false (Map.delete m 3L);
  Alcotest.(check (option int64)) "still there" (Some 30L) (Map.lookup m 3L);
  (* default-zero slots are elided from the dump *)
  Alcotest.(check bool) "dump elides zeros" true
    (Map.to_list m = [ (3L, 30L) ])

let t_map_percpu () =
  let m = Map.create ~kind:Map.Percpu ~cpus:4 ~max_entries:8 () in
  Alcotest.(check int) "cpus" 4 (Map.cpus m);
  (* each bank is independent... *)
  Alcotest.(check bool) "bank 0" true (Map.update ~cpu:0 m 7L 10L);
  Alcotest.(check bool) "bank 2" true (Map.update ~cpu:2 m 7L 32L);
  Alcotest.(check (option int64)) "bank 0 read" (Some 10L)
    (Map.lookup ~cpu:0 m 7L);
  Alcotest.(check (option int64)) "bank 1 miss" None (Map.lookup ~cpu:1 m 7L);
  (* ...and merged sums across banks *)
  Alcotest.(check (option int64)) "merged sum" (Some 42L) (Map.merged m 7L);
  Alcotest.(check (option int64)) "merged miss" None (Map.merged m 8L);
  Alcotest.(check bool) "dump is merged" true (Map.to_list m = [ (7L, 42L) ]);
  Alcotest.(check bool) "bank delete" true (Map.delete ~cpu:2 m 7L);
  Alcotest.(check (option int64)) "merged after delete" (Some 10L)
    (Map.merged m 7L)

let t_map_spinlock () =
  let m = Map.create ~kind:Map.Spinlock ~max_entries:2 () in
  (* unlocked access never touches the value *)
  Alcotest.(check bool) "update without lock" false (Map.update ~cpu:0 m 1L 5L);
  (match Map.try_lock ~cpu:0 m 1L with
  | Map.Acquired id ->
      Alcotest.(check bool) "held" true (Map.lock_held m 1L);
      (* self-deadlock: bounded spin reports contention, not a hang *)
      Alcotest.(check bool) "re-lock contends" true
        (Map.try_lock ~cpu:0 m 1L = Map.Contended);
      (* a non-holder cannot see or touch the slot *)
      Alcotest.(check (option int64)) "non-holder miss" None
        (Map.lookup ~cpu:1 m 1L);
      Alcotest.(check bool) "non-holder update" false
        (Map.update ~cpu:1 m 1L 9L);
      Alcotest.(check bool) "non-holder unlock" false (Map.unlock_id ~cpu:1 m id);
      (* the holder operates normally *)
      Alcotest.(check bool) "holder update" true (Map.update ~cpu:0 m 1L 5L);
      Alcotest.(check (option int64)) "holder read" (Some 5L)
        (Map.lookup ~cpu:0 m 1L);
      Alcotest.(check bool) "unlock" true (Map.unlock_id ~cpu:0 m id);
      Alcotest.(check bool) "released" false (Map.lock_held m 1L);
      Alcotest.(check bool) "double unlock" false (Map.unlock_id ~cpu:0 m id)
  | _ -> Alcotest.fail "first try_lock must acquire");
  (* lock+delete: the removed slot's unlock is tolerated *)
  (match Map.try_lock ~cpu:0 m 1L with
  | Map.Acquired id ->
      Alcotest.(check bool) "locked delete" true (Map.delete ~cpu:0 m 1L);
      Alcotest.(check bool) "unlock dead slot" true (Map.unlock_id ~cpu:0 m id)
  | _ -> Alcotest.fail "re-acquire must succeed");
  (* capacity: a full map cannot create a new slot to lock *)
  ignore (Map.try_lock ~cpu:0 m 10L);
  ignore (Map.try_lock ~cpu:1 m 11L);
  Alcotest.(check bool) "full map" true
    (Map.try_lock ~cpu:2 m 12L = Map.Unavailable);
  (* non-Spinlock maps refuse the protocol *)
  let h = Map.create ~kind:Map.Hash ~max_entries:2 () in
  Alcotest.(check bool) "hash refuses" true
    (Map.try_lock ~cpu:0 h 1L = Map.Unavailable)

let t_map_rcu () =
  let m = Map.create ~kind:Map.Rcu_shared ~cpus:2 ~max_entries:8 () in
  let stats () = Option.get (Map.rcu_stats m) in
  Alcotest.(check int) "v0" 0 (stats ()).Map.version;
  Alcotest.(check bool) "publish 1" true (Map.update m 1L 10L);
  Alcotest.(check bool) "publish 2" true (Map.update m 2L 20L);
  let s = stats () in
  Alcotest.(check int) "two versions" 2 s.Map.version;
  Alcotest.(check bool) "retired pending" true (s.Map.retired > 0);
  (* readers are wait-free on the snapshot, any cpu *)
  Alcotest.(check (option int64)) "read cpu0" (Some 10L) (Map.lookup ~cpu:0 m 1L);
  Alcotest.(check (option int64)) "read cpu1" (Some 20L) (Map.lookup ~cpu:1 m 2L);
  (* one cpu quiescing is not a grace period with cpus:2 ... *)
  Map.rcu_quiesce m ~cpu:0;
  (* ... but a full synchronize reclaims everything retired *)
  Map.rcu_synchronize m;
  let s = stats () in
  Alcotest.(check int) "drained" 0 s.Map.retired;
  Alcotest.(check bool) "reclaimed" true (s.Map.reclaimed > 0);
  (* per-cpu quiescence from every cpu also completes a grace period *)
  Alcotest.(check bool) "delete publishes" true (Map.delete m 2L);
  Alcotest.(check bool) "retired again" true ((stats ()).Map.retired > 0);
  Map.rcu_quiesce m ~cpu:0;
  Map.rcu_quiesce m ~cpu:1;
  Alcotest.(check int) "quiesced drain" 0 (stats ()).Map.retired;
  Alcotest.(check bool) "contents survive" true (Map.to_list m = [ (1L, 10L) ]);
  (* non-RCU maps have no stats and quiescence is a no-op *)
  let h = Map.create ~max_entries:2 () in
  Alcotest.(check bool) "hash no stats" true (Map.rcu_stats h = None);
  Map.rcu_quiesce h ~cpu:0;
  Map.rcu_synchronize h

(* fds are monotonic and never reused: a stale fd can only ever miss,
   which is what makes cross-registry sharing (engine replace) safe. *)
let t_map_registry_fds () =
  let r = Map.registry () in
  let m1 = Map.create ~max_entries:2 () in
  let m2 = Map.create ~max_entries:2 () in
  let fd1 = Map.register r m1 in
  let fd2 = Map.register r m2 in
  Alcotest.(check int64) "fds start at 3" 3L fd1;
  Alcotest.(check bool) "monotonic" true (fd2 > fd1);
  Alcotest.(check bool) "unregister" true (Map.unregister r fd1);
  Alcotest.(check bool) "stale fd misses" true (Map.find r fd1 = None);
  Alcotest.(check bool) "unregister again" false (Map.unregister r fd1);
  let fd3 = Map.register r (Map.create ~max_entries:2 ()) in
  Alcotest.(check bool) "no reuse after free" true (fd3 > fd2);
  (* one map may be registered in several registries (shared maps) *)
  let r2 = Map.registry () in
  let fd_shared = Map.register r2 m2 in
  Alcotest.(check bool) "shared registration" true
    (Map.find r2 fd_shared == Map.find r fd2
    || (Map.find r2 fd_shared <> None && Map.find r fd2 <> None))

(* Per-kind helper costs: the invariants cost.mli pins. *)
let t_map_cost_monotone () =
  let kinds =
    [ Map.Array; Map.Percpu; Map.Hash; Map.Spinlock; Map.Rcu_shared ]
  in
  List.iter
    (fun k ->
      let c = Cost.map_cost k in
      let name = Map.kind_name k in
      Alcotest.(check bool) (name ^ " miss <= hit") true
        (c.Cost.lookup_miss <= c.Cost.lookup_hit);
      Alcotest.(check bool) (name ^ " hit <= update") true
        (c.Cost.lookup_hit <= c.Cost.update);
      Alcotest.(check bool) (name ^ " delete <= update") true
        (c.Cost.delete <= c.Cost.update);
      Alcotest.(check bool) (name ^ " positive") true (c.Cost.lookup_miss > 0))
    kinds;
  (* cross-kind ordering: Array <= Percpu <= Hash <= Spinlock <= Rcu *)
  ignore
    (List.fold_left
       (fun prev k ->
         let c = Cost.map_cost k in
         (match prev with
         | None -> ()
         | Some (pname, (p : Cost.map_cost)) ->
             Alcotest.(check bool)
               (Printf.sprintf "%s <= %s hit" pname (Map.kind_name k))
               true
               (p.Cost.lookup_hit <= c.Cost.lookup_hit);
             Alcotest.(check bool)
               (Printf.sprintf "%s <= %s miss" pname (Map.kind_name k))
               true
               (p.Cost.lookup_miss <= c.Cost.lookup_miss));
         Some (Map.kind_name k, c))
       None kinds);
  (* the RCU copy+publish+retire update dominates every other kind's *)
  let rcu = Cost.map_cost Map.Rcu_shared in
  List.iter
    (fun k ->
      let c = Cost.map_cost k in
      Alcotest.(check bool)
        (Map.kind_name k ^ " update < rcu update")
        true
        (c.Cost.update <= rcu.Cost.update))
    [ Map.Array; Map.Percpu; Map.Hash; Map.Spinlock ];
  (* lock/unlock/merge constants *)
  Alcotest.(check bool) "lock > unlock" true
    (Cost.map_lock_cost > Cost.map_unlock_cost);
  Alcotest.(check bool) "merge linear in cpus" true
    (Cost.map_merge_cost ~cpus:8 - Cost.map_merge_cost ~cpus:4
    = Cost.map_merge_cost ~cpus:4 - Cost.map_merge_cost ~cpus:0)

let t_helpers_pkt () =
  let k = Helpers.create () in
  let impls = Helpers.implementations k in
  Alcotest.(check bool) "sk helpers" true (List.mem_assoc "bpf_sk_lookup_udp" impls);
  Alcotest.(check bool) "pkt helpers" true (List.mem_assoc "pkt_read_u64" impls);
  Alcotest.(check bool) "map helpers" true (List.mem_assoc "bpf_map_lookup" impls);
  Helpers.set_packet k (Some (Packet.make ~proto:Packet.Udp ~src_port:1 ~dst_port:2 (Bytes.make 4 'x')));
  Alcotest.(check bool) "packet set" true (Helpers.packet k <> None);
  Helpers.set_packet k None;
  Alcotest.(check bool) "packet cleared" true (Helpers.packet k = None)

let () =
  Alcotest.run "kernel"
    [
      ( "kernel",
        [
          Alcotest.test_case "packet rw" `Quick t_packet_rw;
          Alcotest.test_case "packet bounds" `Quick t_packet_bounds;
          Alcotest.test_case "sockets" `Quick t_sockets;
          Alcotest.test_case "maps" `Quick t_maps;
          Alcotest.test_case "map array kind" `Quick t_map_array;
          Alcotest.test_case "map percpu banks" `Quick t_map_percpu;
          Alcotest.test_case "map spinlock protocol" `Quick t_map_spinlock;
          Alcotest.test_case "map rcu epochs" `Quick t_map_rcu;
          Alcotest.test_case "map registry fds" `Quick t_map_registry_fds;
          Alcotest.test_case "map cost monotone" `Quick t_map_cost_monotone;
          Alcotest.test_case "hook ctx" `Quick t_hook_ctx;
          Alcotest.test_case "hook defaults" `Quick t_hook_defaults;
          Alcotest.test_case "cost ordering" `Quick t_cost_ordering;
          Alcotest.test_case "packet offset overflow" `Quick
            t_packet_offset_overflow;
          Alcotest.test_case "cost monotone grid" `Quick t_cost_monotone_grid;
          Alcotest.test_case "cost linear in insns" `Quick t_cost_insn_linear;
          Alcotest.test_case "helper registry" `Quick t_helpers_pkt;
        ] );
    ]
