(* Kernel substrate tests: packets, sockets, maps, hooks, cost model. *)
open Kflex_kernel

let t_packet_rw () =
  let p = Packet.make ~proto:Packet.Udp ~src_port:1 ~dst_port:2 (Bytes.make 16 '\000') in
  Packet.write p ~width:4 4 0xAABBCCDDL;
  Alcotest.(check int64) "read back" 0xAABBCCDDL (Packet.read p ~width:4 4);
  Alcotest.(check int64) "low byte" 0xDDL (Packet.read p ~width:1 4);
  Alcotest.(check int) "len" 16 (Packet.len p)

let t_packet_bounds () =
  let p = Packet.make ~proto:Packet.Tcp ~src_port:1 ~dst_port:2 (Bytes.make 8 '\255') in
  Alcotest.(check int64) "past end" 0L (Packet.read p ~width:8 4);
  Alcotest.(check int64) "negative" 0L (Packet.read p ~width:1 (-1));
  Packet.write p ~width:8 4 1L (* must be a no-op *);
  Alcotest.(check int64) "unchanged" 0xFFFFFFFFL (Packet.read p ~width:4 4)

let t_sockets () =
  let s = Socket.create () in
  Socket.listen s ~proto:Packet.Udp ~port:53;
  Alcotest.(check bool) "no tcp:53" true (Socket.lookup s ~proto:Packet.Tcp ~port:53 = None);
  let h1 = Option.get (Socket.lookup s ~proto:Packet.Udp ~port:53) in
  let h2 = Option.get (Socket.lookup s ~proto:Packet.Udp ~port:53) in
  Alcotest.(check int64) "same handle" h1 h2;
  Alcotest.(check (option int)) "two refs" (Some 2) (Socket.refcount s ~proto:Packet.Udp ~port:53);
  Alcotest.(check bool) "release" true (Socket.release s h1);
  Alcotest.(check int) "total" 1 (Socket.total_refs s);
  Alcotest.(check bool) "release" true (Socket.release s h1);
  Alcotest.(check bool) "over-release" false (Socket.release s h1);
  Socket.close s ~proto:Packet.Udp ~port:53;
  Alcotest.(check bool) "closed" true (Socket.lookup s ~proto:Packet.Udp ~port:53 = None)

let t_maps () =
  let m = Map.create ~max_entries:2 in
  Alcotest.(check bool) "upd1" true (Map.update m 1L 10L);
  Alcotest.(check bool) "upd2" true (Map.update m 2L 20L);
  Alcotest.(check bool) "full" false (Map.update m 3L 30L);
  Alcotest.(check bool) "replace ok" true (Map.update m 1L 11L);
  Alcotest.(check (option int64)) "get" (Some 11L) (Map.lookup m 1L);
  Alcotest.(check bool) "del" true (Map.delete m 1L);
  Alcotest.(check bool) "del again" false (Map.delete m 1L);
  Alcotest.(check int) "entries" 1 (Map.entries m);
  (* registry *)
  let r = Map.registry () in
  let fd = Map.register r m in
  Alcotest.(check bool) "found" true (Map.find r fd <> None);
  Alcotest.(check bool) "unknown fd" true (Map.find r 999L = None)

let t_hook_ctx () =
  let p = Packet.make ~proto:Packet.Tcp ~src_port:1234 ~dst_port:80 (Bytes.make 100 '\000') in
  let ctx = Hook.build_ctx p in
  Alcotest.(check int) "size" Hook.ctx_size (Bytes.length ctx);
  Alcotest.(check int32) "len" 100l (Bytes.get_int32_le ctx 0);
  Alcotest.(check int32) "proto" 1l (Bytes.get_int32_le ctx 4);
  Alcotest.(check int) "sport" 1234 (Bytes.get_uint16_le ctx 8);
  Alcotest.(check int) "dport" 80 (Bytes.get_uint16_le ctx 10)

let t_hook_defaults () =
  Alcotest.(check int64) "xdp passes" Hook.xdp_pass (Hook.default_ret Hook.Xdp);
  Alcotest.(check int64) "skb passes" 0L (Hook.default_ret Hook.Sk_skb);
  Alcotest.(check int64) "lsm denies" (-1L) (Hook.default_ret Hook.Lsm);
  Alcotest.(check bool) "lsm sleepable" true (Hook.sleepable Hook.Lsm);
  Alcotest.(check bool) "xdp not" false (Hook.sleepable Hook.Xdp)

let t_cost_ordering () =
  (* the structural claim behind every end-to-end figure *)
  let compute_ns = 1000. in
  let xdp = Cost.xdp_service_ns ~compute_ns ~reply:true in
  let skb = Cost.skb_service_ns ~proto_tcp:true ~compute_ns in
  let usr_udp = Cost.user_service_ns ~proto_tcp:false ~compute_ns in
  let usr_tcp = Cost.user_service_ns ~proto_tcp:true ~compute_ns in
  Alcotest.(check bool) "xdp < skb" true (xdp < skb);
  Alcotest.(check bool) "skb < user" true (skb < usr_tcp);
  Alcotest.(check bool) "udp user < tcp user" true (usr_udp < usr_tcp);
  Alcotest.(check bool) "compute monotone" true
    (Cost.xdp_service_ns ~compute_ns:2000. ~reply:true > xdp)

(* Regression (found by the differential fuzzer): [off + width] in the
   packet bounds check overflowed for offsets near [max_int], turning a wild
   read into a Bytes exception; and 64-bit helper offsets were truncated
   before checking. *)
let t_packet_offset_overflow () =
  let p = Packet.make ~proto:Packet.Udp ~src_port:1 ~dst_port:2 (Bytes.make 8 '\042') in
  Alcotest.(check int64) "max_int read" 0L (Packet.read p ~width:8 max_int);
  Alcotest.(check int64) "near-max read" 0L (Packet.read p ~width:2 (max_int - 4));
  Packet.write p ~width:8 max_int 7L;
  Packet.write p ~width:4 (max_int - 2) 7L;
  Alcotest.(check int64) "unchanged" 0x2a2a2a2a2a2a2a2aL (Packet.read p ~width:8 0)

(* The cost model's structural claims, on a grid: every layered deployment
   is monotone in compute, and adding a layer never makes a request
   cheaper. These orderings are what every end-to-end figure rests on. *)
let t_cost_monotone_grid () =
  let computes = [ 0.; 100.; 500.; 1_000.; 2_000.; 4_000.; 10_000. ] in
  let check_mono name f =
    ignore
      (List.fold_left
         (fun prev c ->
           let v = f c in
           Alcotest.(check bool)
             (Printf.sprintf "%s monotone at %g" name c)
             true (v >= prev);
           v)
         neg_infinity computes)
  in
  check_mono "xdp reply" (fun c -> Cost.xdp_service_ns ~compute_ns:c ~reply:true);
  check_mono "xdp drop" (fun c -> Cost.xdp_service_ns ~compute_ns:c ~reply:false);
  check_mono "skb udp" (fun c -> Cost.skb_service_ns ~proto_tcp:false ~compute_ns:c);
  check_mono "skb tcp" (fun c -> Cost.skb_service_ns ~proto_tcp:true ~compute_ns:c);
  check_mono "user udp" (fun c -> Cost.user_service_ns ~proto_tcp:false ~compute_ns:c);
  check_mono "user tcp" (fun c -> Cost.user_service_ns ~proto_tcp:true ~compute_ns:c);
  List.iter
    (fun c ->
      let xdp = Cost.xdp_service_ns ~compute_ns:c ~reply:false in
      let skb_u = Cost.skb_service_ns ~proto_tcp:false ~compute_ns:c in
      let skb_t = Cost.skb_service_ns ~proto_tcp:true ~compute_ns:c in
      let usr_u = Cost.user_service_ns ~proto_tcp:false ~compute_ns:c in
      let usr_t = Cost.user_service_ns ~proto_tcp:true ~compute_ns:c in
      Alcotest.(check bool) "xdp <= skb (udp)" true (xdp <= skb_u);
      Alcotest.(check bool) "skb <= user (udp)" true (skb_u <= usr_u);
      Alcotest.(check bool) "skb <= user (tcp)" true (skb_t <= usr_t);
      Alcotest.(check bool) "udp <= tcp at skb" true (skb_u <= skb_t);
      Alcotest.(check bool) "udp <= tcp at user" true (usr_u <= usr_t);
      Alcotest.(check bool) "reply costs" true
        (Cost.xdp_service_ns ~compute_ns:c ~reply:true >= xdp))
    computes;
  (* the layer gaps match their published building blocks *)
  let gap =
    Cost.user_service_ns ~proto_tcp:false ~compute_ns:0.
    -. Cost.skb_service_ns ~proto_tcp:false ~compute_ns:0.
  in
  Alcotest.(check bool) "user gap is the boundary cost" true
    (gap >= Cost.syscall_ns);
  Alcotest.(check bool) "sane constants" true
    (Cost.insn_ns > 0. && Cost.native_speedup >= 1.
    && Cost.nic_to_xdp_ns > 0. && Cost.udp_stack_ns < Cost.tcp_stack_ns)

(* Compute units -> ns conversion is linear in the measured cost. *)
let t_cost_insn_linear () =
  let base = Cost.xdp_service_ns ~compute_ns:0. ~reply:true in
  List.iter
    (fun units ->
      let c = float_of_int units *. Cost.insn_ns in
      let v = Cost.xdp_service_ns ~compute_ns:c ~reply:true in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "%d units" units)
        (base +. c) v)
    [ 1; 10; 1_000; 250_000 ]

let t_helpers_pkt () =
  let k = Helpers.create () in
  let impls = Helpers.implementations k in
  Alcotest.(check bool) "sk helpers" true (List.mem_assoc "bpf_sk_lookup_udp" impls);
  Alcotest.(check bool) "pkt helpers" true (List.mem_assoc "pkt_read_u64" impls);
  Alcotest.(check bool) "map helpers" true (List.mem_assoc "bpf_map_lookup" impls);
  Helpers.set_packet k (Some (Packet.make ~proto:Packet.Udp ~src_port:1 ~dst_port:2 (Bytes.make 4 'x')));
  Alcotest.(check bool) "packet set" true (Helpers.packet k <> None);
  Helpers.set_packet k None;
  Alcotest.(check bool) "packet cleared" true (Helpers.packet k = None)

let () =
  Alcotest.run "kernel"
    [
      ( "kernel",
        [
          Alcotest.test_case "packet rw" `Quick t_packet_rw;
          Alcotest.test_case "packet bounds" `Quick t_packet_bounds;
          Alcotest.test_case "sockets" `Quick t_sockets;
          Alcotest.test_case "maps" `Quick t_maps;
          Alcotest.test_case "hook ctx" `Quick t_hook_ctx;
          Alcotest.test_case "hook defaults" `Quick t_hook_defaults;
          Alcotest.test_case "cost ordering" `Quick t_cost_ordering;
          Alcotest.test_case "packet offset overflow" `Quick
            t_packet_offset_overflow;
          Alcotest.test_case "cost monotone grid" `Quick t_cost_monotone_grid;
          Alcotest.test_case "cost linear in insns" `Quick t_cost_insn_linear;
          Alcotest.test_case "helper registry" `Quick t_helpers_pkt;
        ] );
    ]
