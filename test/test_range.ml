(* Property tests for the verifier's value-range domain: every transfer
   function must be a sound over-approximation, and branch refinement must
   keep all models of the assumed condition. *)
open Kflex_verifier

let arb_i64 =
  QCheck.(
    make
      ~print:(Printf.sprintf "%Ld")
      Gen.(
        oneof
          [
            map Int64.of_int int;
            oneofl
              [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0xffL; 4096L;
                -4096L ];
          ]))

(* A range built from two concrete values (both of which are members). *)
let arb_range2 =
  QCheck.(
    map
      (fun (a, b) -> ((a, b), Range.join (Range.const a) (Range.const b)))
      (pair arb_i64 arb_i64))

let in_range v (r : Range.t) =
  Int64.unsigned_compare r.Range.umin v <= 0
  && Int64.unsigned_compare v r.Range.umax <= 0
  && r.Range.smin <= v && v <= r.Range.smax

let ops : (string * (Range.t -> Range.t -> Range.t) * (int64 -> int64 -> int64)) list
    =
  [
    ("add", Range.add, Int64.add);
    ("sub", Range.sub, Int64.sub);
    ("mul", Range.mul, Int64.mul);
    ("div", Range.div, fun a b -> if b = 0L then 0L else Int64.unsigned_div a b);
    ("rem", Range.rem, fun a b -> if b = 0L then a else Int64.unsigned_rem a b);
    ("and", Range.logand, Int64.logand);
    ("or", Range.logor, Int64.logor);
    ("xor", Range.logxor, Int64.logxor);
    ("shl", Range.shl, fun a b -> Int64.shift_left a (Int64.to_int b land 63));
    ( "shr",
      Range.lshr,
      fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63) );
    ("ashr", Range.ashr, fun a b -> Int64.shift_right a (Int64.to_int b land 63));
  ]

let soundness_tests =
  List.map
    (fun (name, abs, conc) ->
      QCheck.Test.make ~count:1000 ~name:("soundness " ^ name)
        QCheck.(pair arb_range2 arb_range2)
        (fun (((x1, x2), rx), ((y1, y2), ry)) ->
          let res = abs rx ry in
          List.for_all
            (fun x -> List.for_all (fun y -> in_range (conc x y) res) [ y1; y2 ])
            [ x1; x2 ]))
    ops

let conds =
  [
    (Kflex_bpf.Insn.Eq, fun a b -> Int64.equal a b);
    (Kflex_bpf.Insn.Ne, fun a b -> not (Int64.equal a b));
    (Kflex_bpf.Insn.Lt, fun a b -> Int64.unsigned_compare a b < 0);
    (Kflex_bpf.Insn.Le, fun a b -> Int64.unsigned_compare a b <= 0);
    (Kflex_bpf.Insn.Gt, fun a b -> Int64.unsigned_compare a b > 0);
    (Kflex_bpf.Insn.Ge, fun a b -> Int64.unsigned_compare a b >= 0);
    (Kflex_bpf.Insn.Slt, fun a b -> Int64.compare a b < 0);
    (Kflex_bpf.Insn.Sle, fun a b -> Int64.compare a b <= 0);
    (Kflex_bpf.Insn.Sgt, fun a b -> Int64.compare a b > 0);
    (Kflex_bpf.Insn.Sge, fun a b -> Int64.compare a b >= 0);
  ]

(* refinement soundness: models of the condition survive refinement *)
let refine_tests =
  List.map
    (fun (cond, holds) ->
      let name =
        Format.asprintf "refine %a" Kflex_bpf.Insn.pp_cond cond
      in
      QCheck.Test.make ~count:1000 ~name
        QCheck.(pair arb_range2 arb_range2)
        (fun (((x1, x2), rx), ((y1, y2), ry)) ->
          let models =
            List.concat_map
              (fun x ->
                List.filter_map
                  (fun y -> if holds x y then Some (x, y) else None)
                  [ y1; y2 ])
              [ x1; x2 ]
          in
          match Range.refine cond rx ry with
          | None -> models = [] (* dead branch must really have no models *)
          | Some (rx', ry') ->
              List.for_all
                (fun (x, y) -> in_range x rx' && in_range y ry')
                models))
    conds

let prop_negate_cond =
  QCheck.Test.make ~count:500 ~name:"negate_cond is boolean negation"
    QCheck.(pair arb_i64 arb_i64)
    (fun (a, b) ->
      List.for_all
        (fun (c, holds) ->
          match c with
          | Kflex_bpf.Insn.Set -> true (* Set has no exact negation *)
          | _ ->
              let neg = Range.negate_cond c in
              let holds_neg =
                List.assoc neg conds
              in
              holds a b <> holds_neg a b)
        conds)

let prop_join_subset =
  QCheck.Test.make ~count:500 ~name:"join is an upper bound"
    QCheck.(pair arb_range2 arb_range2)
    (fun ((_, rx), (_, ry)) ->
      let j = Range.join rx ry in
      Range.subset rx j && Range.subset ry j)

let prop_const_exact =
  QCheck.Test.make ~count:500 ~name:"const ops are exact"
    QCheck.(pair arb_i64 arb_i64)
    (fun (a, b) ->
      List.for_all
        (fun (_, abs, conc) ->
          Range.is_const (abs (Range.const a) (Range.const b))
          = Some (conc a b))
        ops)

let test_fits_unsigned () =
  let r = Range.unsigned 10L 100L in
  Alcotest.(check bool) "inside" true (Range.fits_unsigned r ~lo:0L ~hi:100L);
  Alcotest.(check bool) "tight" true (Range.fits_unsigned r ~lo:10L ~hi:100L);
  Alcotest.(check bool) "above" false (Range.fits_unsigned r ~lo:0L ~hi:99L);
  Alcotest.(check bool) "below" false (Range.fits_unsigned r ~lo:11L ~hi:100L);
  Alcotest.(check bool) "top never fits" false
    (Range.fits_unsigned Range.top ~lo:0L ~hi:Int64.max_int)

let test_masking_bounds () =
  (* the guard-elision pattern: (x & 1023) * 8 + 64 is within [64, 8248] *)
  let x = Range.top in
  let masked = Range.logand x (Range.const 1023L) in
  let scaled = Range.mul masked (Range.const 8L) in
  let off = Range.add scaled (Range.const 64L) in
  Alcotest.(check bool) "fits heap" true
    (Range.fits_unsigned off ~lo:0L ~hi:16384L)

let () =
  Alcotest.run "range"
    ([
       ( "unit",
         [
           Alcotest.test_case "fits_unsigned" `Quick test_fits_unsigned;
           Alcotest.test_case "mask-scale-add bounds" `Quick test_masking_bounds;
         ] );
     ]
    @ [
        ( "props",
          List.map QCheck_alcotest.to_alcotest
            (soundness_tests @ refine_tests
            @ [ prop_negate_cond; prop_join_subset; prop_const_exact ]) );
      ])
