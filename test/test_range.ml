(* Property tests for the verifier's value-range domain: every transfer
   function must be a sound over-approximation, and branch refinement must
   keep all models of the assumed condition. *)
open Kflex_verifier

let arb_i64 =
  QCheck.(
    make
      ~print:(Printf.sprintf "%Ld")
      Gen.(
        oneof
          [
            map Int64.of_int int;
            oneofl
              [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0xffL; 4096L;
                -4096L ];
          ]))

(* A range built from two concrete values (both of which are members). *)
let arb_range2 =
  QCheck.(
    map
      (fun (a, b) -> ((a, b), Range.join (Range.const a) (Range.const b)))
      (pair arb_i64 arb_i64))

(* Membership in the full combined domain: interval bounds AND known bits.
   Using this in every soundness property below means the tnum half of each
   transfer function is checked by the same models as the interval half. *)
let in_range v (r : Range.t) =
  Int64.unsigned_compare r.Range.umin v <= 0
  && Int64.unsigned_compare v r.Range.umax <= 0
  && r.Range.smin <= v && v <= r.Range.smax
  && Tnum.contains (Range.bits r) v

let ops : (string * (Range.t -> Range.t -> Range.t) * (int64 -> int64 -> int64)) list
    =
  [
    ("add", Range.add, Int64.add);
    ("sub", Range.sub, Int64.sub);
    ("mul", Range.mul, Int64.mul);
    ("div", Range.div, fun a b -> if b = 0L then 0L else Int64.unsigned_div a b);
    ("rem", Range.rem, fun a b -> if b = 0L then a else Int64.unsigned_rem a b);
    ("and", Range.logand, Int64.logand);
    ("or", Range.logor, Int64.logor);
    ("xor", Range.logxor, Int64.logxor);
    ("shl", Range.shl, fun a b -> Int64.shift_left a (Int64.to_int b land 63));
    ( "shr",
      Range.lshr,
      fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63) );
    ("ashr", Range.ashr, fun a b -> Int64.shift_right a (Int64.to_int b land 63));
  ]

let soundness_tests =
  List.map
    (fun (name, abs, conc) ->
      QCheck.Test.make ~count:1000 ~name:("soundness " ^ name)
        QCheck.(pair arb_range2 arb_range2)
        (fun (((x1, x2), rx), ((y1, y2), ry)) ->
          let res = abs rx ry in
          List.for_all
            (fun x -> List.for_all (fun y -> in_range (conc x y) res) [ y1; y2 ])
            [ x1; x2 ]))
    ops

let conds =
  [
    (Kflex_bpf.Insn.Eq, fun a b -> Int64.equal a b);
    (Kflex_bpf.Insn.Ne, fun a b -> not (Int64.equal a b));
    (Kflex_bpf.Insn.Lt, fun a b -> Int64.unsigned_compare a b < 0);
    (Kflex_bpf.Insn.Le, fun a b -> Int64.unsigned_compare a b <= 0);
    (Kflex_bpf.Insn.Gt, fun a b -> Int64.unsigned_compare a b > 0);
    (Kflex_bpf.Insn.Ge, fun a b -> Int64.unsigned_compare a b >= 0);
    (Kflex_bpf.Insn.Slt, fun a b -> Int64.compare a b < 0);
    (Kflex_bpf.Insn.Sle, fun a b -> Int64.compare a b <= 0);
    (Kflex_bpf.Insn.Sgt, fun a b -> Int64.compare a b > 0);
    (Kflex_bpf.Insn.Sge, fun a b -> Int64.compare a b >= 0);
  ]

(* refinement soundness: models of the condition survive refinement *)
let refine_tests =
  List.map
    (fun (cond, holds) ->
      let name =
        Format.asprintf "refine %a" Kflex_bpf.Insn.pp_cond cond
      in
      QCheck.Test.make ~count:1000 ~name
        QCheck.(pair arb_range2 arb_range2)
        (fun (((x1, x2), rx), ((y1, y2), ry)) ->
          let models =
            List.concat_map
              (fun x ->
                List.filter_map
                  (fun y -> if holds x y then Some (x, y) else None)
                  [ y1; y2 ])
              [ x1; x2 ]
          in
          match Range.refine cond rx ry with
          | None -> models = [] (* dead branch must really have no models *)
          | Some (rx', ry') ->
              List.for_all
                (fun (x, y) -> in_range x rx' && in_range y ry')
                models))
    conds

(* ---- direct Tnum properties -------------------------------------------- *)

(* A tnum built from two concrete witnesses (both of which are members). *)
let arb_tnum2 =
  QCheck.(
    map
      (fun (a, b) -> ((a, b), Tnum.union (Tnum.const a) (Tnum.const b)))
      (pair arb_i64 arb_i64))

let tnum_ops : (string * (Tnum.t -> Tnum.t -> Tnum.t) * (int64 -> int64 -> int64)) list
    =
  [
    ("add", Tnum.add, Int64.add);
    ("sub", Tnum.sub, Int64.sub);
    ("mul", Tnum.mul, Int64.mul);
    ("div", Tnum.div, fun a b -> if b = 0L then 0L else Int64.unsigned_div a b);
    ("rem", Tnum.rem, fun a b -> if b = 0L then a else Int64.unsigned_rem a b);
    ("and", Tnum.logand, Int64.logand);
    ("or", Tnum.logor, Int64.logor);
    ("xor", Tnum.logxor, Int64.logxor);
    ("shl", Tnum.shl, fun a b -> Int64.shift_left a (Int64.to_int b land 63));
    ( "shr",
      Tnum.lshr,
      fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63) );
    ("ashr", Tnum.ashr, fun a b -> Int64.shift_right a (Int64.to_int b land 63));
  ]

let tnum_soundness_tests =
  List.map
    (fun (name, abs, conc) ->
      QCheck.Test.make ~count:1000 ~name:("tnum soundness " ^ name)
        QCheck.(pair arb_tnum2 arb_tnum2)
        (fun (((x1, x2), tx), ((y1, y2), ty)) ->
          let res = abs tx ty in
          List.for_all
            (fun x ->
              List.for_all (fun y -> Tnum.contains res (conc x y)) [ y1; y2 ])
            [ x1; x2 ]))
    tnum_ops

let prop_tnum_neg =
  QCheck.Test.make ~count:1000 ~name:"tnum soundness neg" arb_tnum2
    (fun ((x1, x2), tx) ->
      let res = Tnum.neg tx in
      List.for_all (fun x -> Tnum.contains res (Int64.neg x)) [ x1; x2 ])

let prop_tnum_const_exact =
  QCheck.Test.make ~count:500 ~name:"tnum const ops are exact"
    QCheck.(pair arb_i64 arb_i64)
    (fun (a, b) ->
      List.for_all
        (fun (name, abs, conc) ->
          (* div/rem deliberately degrade to unknown (see tnum.mli) *)
          name = "div" || name = "rem"
          || Tnum.is_const (abs (Tnum.const a) (Tnum.const b)) = Some (conc a b))
        tnum_ops)

let prop_tnum_range =
  QCheck.Test.make ~count:1000 ~name:"tnum range contains the interval"
    QCheck.(triple arb_i64 arb_i64 arb_i64)
    (fun (a, b, c) ->
      let sorted = List.sort Int64.unsigned_compare [ a; b; c ] in
      match sorted with
      | [ lo; mid; hi ] ->
          let t = Tnum.range lo hi in
          Tnum.contains t lo && Tnum.contains t mid && Tnum.contains t hi
      | _ -> false)

let prop_tnum_lattice =
  QCheck.Test.make ~count:1000 ~name:"tnum union/intersect/subset agree"
    QCheck.(pair arb_tnum2 arb_tnum2)
    (fun (((x1, x2), tx), ((y1, y2), ty)) ->
      let u = Tnum.union tx ty in
      List.for_all (Tnum.contains u) [ x1; x2; y1; y2 ]
      && Tnum.subset tx u && Tnum.subset ty u
      &&
      match Tnum.intersect tx ty with
      | Some i ->
          List.for_all
            (fun w ->
              Tnum.contains i w = (Tnum.contains tx w && Tnum.contains ty w))
            [ x1; x2; y1; y2 ]
      | None ->
          (* empty intersection: no common member among the witnesses *)
          not (List.exists (fun w -> Tnum.contains ty w) [ x1; x2 ])
          || not (List.exists (fun w -> Tnum.contains tx w) [ y1; y2 ]))

let prop_tnum_within_mask =
  QCheck.Test.make ~count:1000 ~name:"within_mask implies land is identity"
    QCheck.(pair arb_tnum2 arb_i64)
    (fun (((x1, x2), tx), m) ->
      (not (Tnum.within_mask tx m))
      || List.for_all (fun x -> Int64.logand x m = x) [ x1; x2 ])

(* refine and negate_cond partition concrete pairs: exactly one of the two
   refinements accepts (a, b), and the accepting one admits it. *)
let prop_refine_negate_consistent =
  QCheck.Test.make ~count:1000 ~name:"refine/negate_cond partition constants"
    QCheck.(pair arb_i64 arb_i64)
    (fun (a, b) ->
      List.for_all
        (fun (c, holds) ->
          let ra = Range.const a and rb = Range.const b in
          let pos = Range.refine c ra rb in
          let neg = Range.refine (Range.negate_cond c) ra rb in
          let admits = function
            | Some (ra', rb') -> in_range a ra' && in_range b rb'
            | None -> false
          in
          if holds a b then admits pos && neg = None
          else admits neg && pos = None)
        conds)

let prop_neg_sound =
  QCheck.Test.make ~count:1000 ~name:"soundness neg" arb_range2
    (fun ((x1, x2), rx) ->
      let res = Range.neg rx in
      List.for_all (fun x -> in_range (Int64.neg x) res) [ x1; x2 ])

let prop_negate_cond =
  QCheck.Test.make ~count:500 ~name:"negate_cond is boolean negation"
    QCheck.(pair arb_i64 arb_i64)
    (fun (a, b) ->
      List.for_all
        (fun (c, holds) ->
          match c with
          | Kflex_bpf.Insn.Set -> true (* Set has no exact negation *)
          | _ ->
              let neg = Range.negate_cond c in
              let holds_neg =
                List.assoc neg conds
              in
              holds a b <> holds_neg a b)
        conds)

let prop_join_subset =
  QCheck.Test.make ~count:500 ~name:"join is an upper bound"
    QCheck.(pair arb_range2 arb_range2)
    (fun ((_, rx), (_, ry)) ->
      let j = Range.join rx ry in
      Range.subset rx j && Range.subset ry j)

let prop_const_exact =
  QCheck.Test.make ~count:500 ~name:"const ops are exact"
    QCheck.(pair arb_i64 arb_i64)
    (fun (a, b) ->
      List.for_all
        (fun (_, abs, conc) ->
          Range.is_const (abs (Range.const a) (Range.const b))
          = Some (conc a b))
        ops)

let test_fits_unsigned () =
  let r = Range.unsigned 10L 100L in
  Alcotest.(check bool) "inside" true (Range.fits_unsigned r ~lo:0L ~hi:100L);
  Alcotest.(check bool) "tight" true (Range.fits_unsigned r ~lo:10L ~hi:100L);
  Alcotest.(check bool) "above" false (Range.fits_unsigned r ~lo:0L ~hi:99L);
  Alcotest.(check bool) "below" false (Range.fits_unsigned r ~lo:11L ~hi:100L);
  Alcotest.(check bool) "top never fits" false
    (Range.fits_unsigned Range.top ~lo:0L ~hi:Int64.max_int)

let test_masking_bounds () =
  (* the guard-elision pattern: (x & 1023) * 8 + 64 is within [64, 8248] *)
  let x = Range.top in
  let masked = Range.logand x (Range.const 1023L) in
  let scaled = Range.mul masked (Range.const 8L) in
  let off = Range.add scaled (Range.const 64L) in
  Alcotest.(check bool) "fits heap" true
    (Range.fits_unsigned off ~lo:0L ~hi:16384L)

let () =
  Alcotest.run "range"
    ([
       ( "unit",
         [
           Alcotest.test_case "fits_unsigned" `Quick test_fits_unsigned;
           Alcotest.test_case "mask-scale-add bounds" `Quick test_masking_bounds;
         ] );
     ]
    @ [
        ( "props",
          List.map QCheck_alcotest.to_alcotest
            (soundness_tests @ refine_tests
            @ [
                prop_negate_cond; prop_join_subset; prop_const_exact;
                prop_neg_sound; prop_refine_negate_consistent;
              ]) );
        ( "tnum props",
          List.map QCheck_alcotest.to_alcotest
            (tnum_soundness_tests
            @ [
                prop_tnum_neg; prop_tnum_const_exact; prop_tnum_range;
                prop_tnum_lattice; prop_tnum_within_mask;
              ]) );
      ])
