(* Differential fuzzer tests: corpus replay, a fixed-seed smoke campaign,
   bit-for-bit determinism, and the shrinker. *)
open Kflex_bpf
module Gen = Kflex_fuzz.Gen
module Oracle = Kflex_fuzz.Oracle
module Shrink = Kflex_fuzz.Shrink
module Corpus = Kflex_fuzz.Corpus
module Campaign = Kflex_fuzz.Campaign
module Rng = Kflex_workload.Rng

(* Every committed reproducer — shrunk finds from past campaigns plus the
   hand-written near-miss cases — must replay without any oracle failing. *)
let t_corpus_replay () =
  let files =
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".kfxr")
    |> List.sort compare
  in
  Alcotest.(check bool)
    (Printf.sprintf "corpus is non-trivial (%d files)" (List.length files))
    true
    (List.length files >= 8);
  List.iter
    (fun f ->
      let r = Corpus.read (Filename.concat "corpus" f) in
      match Corpus.replay r with
      | Oracle.Fail fl -> Alcotest.failf "%s: [%s] %s" f fl.Oracle.oracle fl.Oracle.detail
      | Oracle.Pass | Oracle.Rejected _ -> ())
    files

(* The same reproducers replayed with the compiled backend requested: the
   fifth oracle (interpreter-vs-compiled equivalence) runs on top of the
   usual four, so every historical find also pins the Jit's behaviour. *)
let t_corpus_replay_compiled () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".kfxr")
  |> List.iter (fun f ->
         let r = Corpus.read (Filename.concat "corpus" f) in
         match Corpus.replay ~backend:`Compiled r with
         | Oracle.Fail fl ->
             Alcotest.failf "%s: [%s] %s" f fl.Oracle.oracle fl.Oracle.detail
         | Oracle.Pass | Oracle.Rejected _ -> ())

let smoke_dir () =
  let d = Filename.concat (Filename.get_temp_dir_name ()) "kflex_fuzz_test" in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

(* A small fixed-seed campaign: no oracle may fail, every program must
   assemble, and random rejects must stay a minority (the generator would
   silently lose its teeth otherwise). *)
let t_smoke_campaign () =
  let s = Campaign.run ~out_dir:(smoke_dir ()) ~seed:42L ~count:200 () in
  Alcotest.(check int) "no failures" 0 s.Campaign.failures;
  Alcotest.(check int) "all assemble" 0 s.Campaign.invalid;
  Alcotest.(check bool)
    (Printf.sprintf "mostly accepted (%d/200)" s.Campaign.accepted)
    true (s.Campaign.accepted > 100)

let t_campaign_deterministic () =
  let run () = Campaign.run ~out_dir:(smoke_dir ()) ~seed:7L ~count:60 () in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical summaries" true (a = b)

let t_gen_deterministic () =
  let gen () =
    let rng = Rng.create ~seed:99L in
    Gen.generate ~rng ~heap_size:65536L ~port:53 ()
  in
  let a = gen () and b = gen () in
  Alcotest.(check bool) "identical items" true (a = b);
  Alcotest.(check string) "identical encoding"
    (Encode.encode (Gen.assemble a))
    (Encode.encode (Gen.assemble b))

(* The oracles on known-good input: a tiny hand-written program passes all
   four. *)
let t_oracle_pass () =
  let prog =
    Gen.assemble
      [
        Asm.mov Reg.R6 Reg.R1;
        Asm.call "kflex_heap_base";
        Asm.mov Reg.R7 Reg.R0;
        Asm.sti Insn.U64 Reg.R7 256 42L;
        Asm.ldx Insn.U64 Reg.R3 Reg.R7 256;
        Asm.mov Reg.R0 Reg.R3;
        Asm.alui Insn.And Reg.R0 3L;
        Asm.exit_;
      ]
  in
  match Oracle.run_case Oracle.default_config prog with
  | Oracle.Pass -> ()
  | v -> Alcotest.failf "expected pass: %a" Oracle.pp_verdict v

(* The containment oracle must reject a harness-visible lie. We check the
   plumbing indirectly: a program the verifier accepts whose concrete
   behaviour is fine still exercises states_at on every insn (run above),
   so here we only make sure Fail propagates from run_case_exn's wrapper. *)
let t_oracle_harness_catch () =
  (* a config the heap rejects: kbase not size-aligned *)
  let cfg = { Oracle.default_config with Oracle.kbase = 0x4000_0000_1000L } in
  let prog = Gen.assemble [ Asm.movi Reg.R0 0L; Asm.exit_ ] in
  match Oracle.run_case cfg prog with
  | Oracle.Fail f -> Alcotest.(check string) "harness" "harness" f.Oracle.oracle
  | v -> Alcotest.failf "expected harness failure: %a" Oracle.pp_verdict v

(* Shrinking against a synthetic predicate: anything containing the marker
   instruction "fails", so the minimum is exactly one item. *)
let t_shrink_minimises () =
  let marker = Asm.I (Insn.Neg Reg.R3) in
  let junk =
    List.concat_map
      (fun i ->
        [
          Asm.movi Reg.R1 (Int64.of_int i);
          Asm.alui Insn.Add Reg.R1 1L;
          Asm.movi Reg.R2 77L;
        ])
      (List.init 10 Fun.id)
  in
  let items = junk @ [ marker ] @ junk in
  let check cand = List.mem marker cand in
  let small = Shrink.shrink ~check items in
  Alcotest.(check int) "one item left" 1 (List.length small);
  Alcotest.(check bool) "the marker" true (List.mem marker small)

(* Operand simplification: immediates shrink toward zero while the
   predicate (an in-bounds store exists) keeps holding. *)
let t_shrink_simplifies () =
  let items = [ Asm.I (Insn.St (Insn.U64, Reg.R7, 96, 1234L)) ] in
  let check = function
    | [ Asm.I (Insn.St (Insn.U64, Reg.R7, _, _)) ] -> true
    | _ -> false
  in
  match Shrink.shrink ~check items with
  | [ Asm.I (Insn.St (Insn.U64, Reg.R7, off, v)) ] ->
      Alcotest.(check int) "offset zeroed" 0 off;
      Alcotest.(check int64) "imm zeroed" 0L v
  | _ -> Alcotest.fail "unexpected shrink result"

let t_corpus_roundtrip () =
  let prog = Gen.assemble [ Asm.movi Reg.R0 7L; Asm.exit_ ] in
  let cfg =
    {
      Oracle.default_config with
      Oracle.heap_size = 4096L;
      Oracle.kbase = 0x4567_0000_0000L;
      Oracle.pages = [ 0 ];
      Oracle.prandom = 0xdeadbeefL;
      Oracle.payload = "\x00\xff\x7f ok";
    }
  in
  let path = Filename.concat (smoke_dir ()) "roundtrip.kfxr" in
  Corpus.write path ~oracle:"elision" cfg prog;
  let r = Corpus.read path in
  Alcotest.(check (option string)) "oracle" (Some "elision") r.Corpus.oracle;
  Alcotest.(check bool) "config" true (r.Corpus.config = cfg);
  Alcotest.(check string) "prog" (Encode.encode prog)
    (Encode.encode r.Corpus.prog)

(* The chain oracle on known-good input: a hand-written pass-through pair
   run as a 2-program chain through the single-shard engine must be
   observationally identical to sequential facade runs. *)
let t_chain_oracle_pass () =
  let p1 =
    Gen.assemble
      [
        Asm.mov Reg.R6 Reg.R1;
        Asm.call "kflex_heap_base";
        Asm.sti Insn.U64 Reg.R0 256 41L;
        Asm.movi Reg.R0 2L;
        (* XDP_PASS: the chain falls through *)
        Asm.exit_;
      ]
  in
  let p2 =
    Gen.assemble
      [
        Asm.call "kflex_heap_base";
        Asm.ldx Insn.U64 Reg.R3 Reg.R0 256;
        Asm.mov Reg.R0 Reg.R3;
        Asm.exit_;
      ]
  in
  match Oracle.chain_equiv Oracle.default_config p1 p2 with
  | Oracle.Pass -> ()
  | v -> Alcotest.failf "expected chain pass: %a" Oracle.pp_verdict v

(* Every committed reproducer also replays as a self-pair chain: the
   single-shard engine must agree with the facade on the very inputs that
   once broke an oracle — this is the deterministic-mode bit-identity claim
   on the reproducer corpus. *)
let t_corpus_chain_identity () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".kfxr")
  |> List.iter (fun f ->
         let r = Corpus.read (Filename.concat "corpus" f) in
         match Oracle.chain_equiv r.Corpus.config r.Corpus.prog r.Corpus.prog with
         | Oracle.Fail fl ->
             Alcotest.failf "%s: [%s] %s" f fl.Oracle.oracle fl.Oracle.detail
         | Oracle.Pass | Oracle.Rejected _ -> ())

let t_chain_equiv_deterministic () =
  let rng = Rng.create ~seed:21L in
  let p1 = Gen.assemble (Gen.generate ~rng ~heap_size:65536L ~port:53 ()) in
  let p2 = Gen.assemble (Gen.generate ~rng ~heap_size:65536L ~port:53 ()) in
  let a = Oracle.chain_equiv Oracle.default_config p1 p2 in
  let b = Oracle.chain_equiv Oracle.default_config p1 p2 in
  Alcotest.(check bool) "same verdict" true (a = b)

(* A chain-pair reproducer file round-trips including its second program. *)
let t_corpus_pair_roundtrip () =
  let p1 = Gen.assemble [ Asm.movi Reg.R0 2L; Asm.exit_ ] in
  let p2 = Gen.assemble [ Asm.movi Reg.R0 1L; Asm.exit_ ] in
  let path = Filename.concat (smoke_dir ()) "pair.kfxr" in
  Corpus.write path ~oracle:"chain" ~prog2:p2 Oracle.default_config p1;
  let r = Corpus.read path in
  Alcotest.(check (option string)) "oracle" (Some "chain") r.Corpus.oracle;
  (match r.Corpus.prog2 with
  | Some q -> Alcotest.(check string) "prog2" (Encode.encode p2) (Encode.encode q)
  | None -> Alcotest.fail "prog2 lost");
  Alcotest.(check string) "prog" (Encode.encode p1) (Encode.encode r.Corpus.prog)

(* Regression: the campaign must flag a genuinely unsound runtime. We
   simulate one by replaying a wild-store program against a config whose
   quantum is so small the A/B runs still agree — i.e. the case passes —
   then making sure verdicts are stable across two replays (determinism of
   run_case itself). *)
let t_run_case_deterministic () =
  let rng = Rng.create ~seed:5L in
  let items = Gen.generate ~rng ~heap_size:65536L ~port:53 () in
  let prog = Gen.assemble items in
  let a = Oracle.run_case Oracle.default_config prog in
  let b = Oracle.run_case Oracle.default_config prog in
  Alcotest.(check bool) "same verdict" true (a = b)

(* --- the shared-map linearizability oracle ------------------------------ *)

(* A hand-written shared-dialect program: take the spin lock on fd 3,
   update the locked value, release, then write and sum through the RCU
   map on fd 4. Sharded-vs-reference must agree on everything. *)
let shared_prog () =
  Gen.assemble
    [
      Asm.mov Reg.R6 Reg.R1;
      (* spin-locked section on fd 3, key 1 *)
      Asm.sti Insn.U64 Reg.fp (-8) 1L;
      Asm.movi Reg.R1 3L;
      Asm.mov Reg.R2 Reg.fp;
      Asm.alui Insn.Add Reg.R2 (-8L);
      Asm.call "bpf_map_lock";
      Asm.jmpi Insn.Eq Reg.R0 0L "miss";
      Asm.stx Insn.U64 Reg.fp (-40) Reg.R0;
      Asm.sti Insn.U64 Reg.fp (-16) 7L;
      Asm.movi Reg.R1 3L;
      Asm.mov Reg.R2 Reg.fp;
      Asm.alui Insn.Add Reg.R2 (-8L);
      Asm.mov Reg.R3 Reg.fp;
      Asm.alui Insn.Add Reg.R3 (-16L);
      Asm.call "bpf_map_update";
      Asm.ldx Insn.U64 Reg.R1 Reg.fp (-40);
      Asm.call "bpf_map_unlock";
      Asm.label "miss";
      (* rcu map on fd 4: publish key 2 -> 9, then read it back *)
      Asm.sti Insn.U64 Reg.fp (-24) 2L;
      Asm.sti Insn.U64 Reg.fp (-32) 9L;
      Asm.movi Reg.R1 4L;
      Asm.mov Reg.R2 Reg.fp;
      Asm.alui Insn.Add Reg.R2 (-24L);
      Asm.mov Reg.R3 Reg.fp;
      Asm.alui Insn.Add Reg.R3 (-32L);
      Asm.call "bpf_map_update";
      Asm.movi Reg.R1 4L;
      Asm.mov Reg.R2 Reg.fp;
      Asm.alui Insn.Add Reg.R2 (-24L);
      Asm.mov Reg.R3 Reg.fp;
      Asm.alui Insn.Add Reg.R3 (-32L);
      Asm.call "bpf_map_sum";
      Asm.movi Reg.R0 2L;
      Asm.exit_;
    ]

let t_shared_oracle_pass () =
  match Oracle.shared_equiv Oracle.default_config (shared_prog ()) with
  | Oracle.Pass -> ()
  | v -> Alcotest.failf "expected shared pass: %a" Oracle.pp_verdict v

let t_shared_safety_pass () =
  match Oracle.shared_safety Oracle.default_config (shared_prog ()) with
  | Oracle.Pass -> ()
  | v -> Alcotest.failf "expected shared safety pass: %a" Oracle.pp_verdict v

(* The shared dialect must be shard-independent by construction: no heap
   base, no sockets, no processor id, no per-CPU map fds. *)
let t_shared_gen_dialect () =
  let forbidden =
    [
      "kflex_heap_base"; "kflex_malloc"; "kflex_free"; "bpf_sk_lookup_udp";
      "bpf_sk_lookup_tcp"; "bpf_sk_release"; "bpf_get_smp_processor_id";
    ]
  in
  for seed = 1 to 50 do
    let rng = Rng.create ~seed:(Int64.of_int seed) in
    let items =
      Gen.generate ~shared:true ~rng ~heap_size:65536L ~port:53 ()
    in
    List.iter
      (function
        | Asm.I (Insn.Call name) when List.mem name forbidden ->
            Alcotest.failf "seed %d: shared program calls %s" seed name
        | _ -> ())
      items
  done

let t_shared_equiv_deterministic () =
  let rng = Rng.create ~seed:31L in
  let items = Gen.generate ~shared:true ~rng ~heap_size:65536L ~port:53 () in
  let prog = Gen.assemble items in
  let a = Oracle.shared_equiv Oracle.default_config prog in
  let b = Oracle.shared_equiv Oracle.default_config prog in
  Alcotest.(check bool) "same verdict" true (a = b);
  match a with
  | Oracle.Fail f -> Alcotest.failf "[%s] %s" f.Oracle.oracle f.Oracle.detail
  | _ -> ()

(* The acceptance gate: a 1000-case campaign with every shared-oracle pass
   escalated to a 4-shard threaded safety run must come back clean. *)
let t_shared_campaign_threaded () =
  let s =
    Campaign.run ~out_dir:(smoke_dir ()) ~threaded_shared:true ~seed:1024L
      ~count:1000 ()
  in
  Alcotest.(check int) "no failures" 0 s.Campaign.failures;
  Alcotest.(check bool)
    (Printf.sprintf "shared oracle exercised (%d/1000)" s.Campaign.shared)
    true
    (s.Campaign.shared > 400)

(* A shared reproducer file replays through the shared oracle. *)
let t_corpus_shared_replay () =
  let path = Filename.concat (smoke_dir ()) "shared.kfxr" in
  Corpus.write path ~oracle:"shared" Oracle.default_config (shared_prog ());
  let r = Corpus.read path in
  Alcotest.(check (option string)) "oracle" (Some "shared") r.Corpus.oracle;
  match Corpus.replay r with
  | Oracle.Fail fl -> Alcotest.failf "[%s] %s" fl.Oracle.oracle fl.Oracle.detail
  | Oracle.Pass | Oracle.Rejected _ -> ()

(* --- the lifecycle no-false-positive contract --------------------------- *)

module Lifecycle = Kflex_verifier.Lifecycle

(* A finding is a false positive only when concrete execution follows its
   full pc witness and contradicts the claim — [Oracle.Refuted]. Anything
   merely unexercised is fine (one run explores one path); anything
   confirmed is the pass working as designed. *)
let lifecycle_no_refutation name cfg prog =
  match Oracle.lifecycle_report cfg prog with
  | Error _ -> ()
  | Ok statuses ->
      List.iter
        (fun ((f : Lifecycle.finding), st) ->
          if st = Oracle.Refuted then
            Alcotest.failf "%s: refuted %s at pc %d (site %d): %s" name
              (Lifecycle.kind_name f.Lifecycle.kind)
              f.Lifecycle.pc f.Lifecycle.site f.Lifecycle.msg)
        statuses

(* Every committed reproducer, under its own config: no lifecycle finding on
   either program of a pair may be refuted by concrete execution. *)
let t_corpus_lifecycle_gate () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".kfxr")
  |> List.iter (fun f ->
         let r = Corpus.read (Filename.concat "corpus" f) in
         lifecycle_no_refutation f r.Corpus.config r.Corpus.prog;
         Option.iter
           (lifecycle_no_refutation (f ^ "#2") r.Corpus.config)
           r.Corpus.prog2)

(* The concrete side of the oracle must be able to say [Confirmed], not just
   [Unexercised] — otherwise the no-refutation property would be vacuous.
   Two straight-line programs whose findings any run exercises: *)
let t_lifecycle_confirms () =
  let status name prog kind =
    match Oracle.lifecycle_report Oracle.default_config prog with
    | Error e -> Alcotest.failf "%s: rejected: %s" name e
    | Ok statuses -> (
        match
          List.find_opt
            (fun ((f : Lifecycle.finding), _) -> f.Lifecycle.kind = kind)
            statuses
        with
        | Some (_, st) -> Oracle.lifecycle_status_name st
        | None ->
            Alcotest.failf "%s: no %s finding" name (Lifecycle.kind_name kind))
  in
  let leak =
    Gen.assemble
      [
        Asm.movi Reg.R1 64L;
        Asm.call "kflex_malloc";
        Asm.movi Reg.R0 0L;
        Asm.exit_;
      ]
  in
  Alcotest.(check string) "leak confirmed" "confirmed"
    (status "leak" leak Lifecycle.Leak);
  let nullderef =
    Gen.assemble
      [
        Asm.movi Reg.R1 64L;
        Asm.call "kflex_malloc";
        Asm.ldx Insn.U64 Reg.R3 Reg.R0 0;
        Asm.movi Reg.R0 0L;
        Asm.exit_;
      ]
  in
  Alcotest.(check string) "null-deref confirmed" "confirmed"
    (status "nullderef" nullderef Lifecycle.Null_deref)

(* 1000 fuzz-generated programs (the generator deliberately emits unchecked
   malloc derefs about half the time, so lifecycle findings are common):
   every finding on every verifier-accepted program must be confirmed or
   unexercised, never refuted. *)
let prop_lifecycle_no_false_positive =
  QCheck.Test.make ~count:1000 ~name:"lifecycle findings are never refuted"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let cfg = Oracle.default_config in
      let items =
        Gen.generate ~rng ~heap_size:cfg.Oracle.heap_size ~port:cfg.Oracle.port ()
      in
      match Gen.assemble items with
      | exception _ -> true
      | prog -> (
          match Oracle.lifecycle_report cfg prog with
          | Error _ -> true
          | Ok statuses ->
              List.for_all (fun (_, st) -> st <> Oracle.Refuted) statuses))

let () =
  Alcotest.run "fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "corpus replay" `Quick t_corpus_replay;
          Alcotest.test_case "corpus replay compiled" `Quick
            t_corpus_replay_compiled;
          Alcotest.test_case "smoke campaign" `Slow t_smoke_campaign;
          Alcotest.test_case "campaign deterministic" `Quick
            t_campaign_deterministic;
          Alcotest.test_case "generator deterministic" `Quick
            t_gen_deterministic;
          Alcotest.test_case "oracle pass" `Quick t_oracle_pass;
          Alcotest.test_case "harness catch" `Quick t_oracle_harness_catch;
          Alcotest.test_case "shrink minimises" `Quick t_shrink_minimises;
          Alcotest.test_case "shrink simplifies" `Quick t_shrink_simplifies;
          Alcotest.test_case "corpus roundtrip" `Quick t_corpus_roundtrip;
          Alcotest.test_case "run_case deterministic" `Quick
            t_run_case_deterministic;
          Alcotest.test_case "chain oracle pass" `Quick t_chain_oracle_pass;
          Alcotest.test_case "corpus chain identity" `Quick
            t_corpus_chain_identity;
          Alcotest.test_case "chain_equiv deterministic" `Quick
            t_chain_equiv_deterministic;
          Alcotest.test_case "corpus pair roundtrip" `Quick
            t_corpus_pair_roundtrip;
          Alcotest.test_case "shared oracle pass" `Quick t_shared_oracle_pass;
          Alcotest.test_case "shared safety pass" `Quick t_shared_safety_pass;
          Alcotest.test_case "shared generator dialect" `Quick
            t_shared_gen_dialect;
          Alcotest.test_case "shared_equiv deterministic" `Quick
            t_shared_equiv_deterministic;
          Alcotest.test_case "shared campaign threaded" `Slow
            t_shared_campaign_threaded;
          Alcotest.test_case "corpus shared replay" `Quick
            t_corpus_shared_replay;
          Alcotest.test_case "corpus lifecycle gate" `Quick
            t_corpus_lifecycle_gate;
          Alcotest.test_case "lifecycle oracle confirms" `Quick
            t_lifecycle_confirms;
          QCheck_alcotest.to_alcotest prop_lifecycle_no_false_positive;
        ] );
    ]
