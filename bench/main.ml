(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5). Run `main.exe all` or a single experiment id
   (table1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | table3 | ablation |
   bechamel).

   Absolute numbers come from our interpreter + calibrated cost model, not
   the authors' testbed: the reproduction target is the shape — who wins,
   by what factor, where the crossovers are. EXPERIMENTS.md records
   paper-vs-measured for each experiment. *)

let pf = Format.printf

let requests =
  match Sys.getenv_opt "KFLEX_BENCH_REQUESTS" with
  | Some s -> (try int_of_string s with _ -> 30_000)
  | None -> 30_000

let hr title = pf "@.=== %s ===@." title

(* ---------------------------------------------------------------- *)

let table1 () =
  hr "Table 1: approaches to safe kernel extensibility (qualitative)";
  pf "  %-38s %-11s %-11s %-11s@." "Approach" "Flexibility" "Performance"
    "Practicality";
  List.iter
    (fun (a, f, p, pr) -> pf "  %-38s %-11s %-11s %-11s@." a f p pr)
    [
      ("Safe languages (e.g., SPIN)", "yes", "yes", "no");
      ("Software Fault Isolation (e.g., VINO)", "yes", "no", "yes");
      ("Static verification (e.g., eBPF)", "no", "yes", "yes");
      ("KFlex (this reproduction)", "yes", "yes", "yes");
    ]

let print_cells title paper cells =
  hr title;
  pf "  (paper: %s)@." paper;
  List.iter (fun cell -> pf "%a@." Kflex_apps.E2e.pp_rows cell) cells

let fig2 () =
  print_cells
    "Figure 2: Memcached, 8 server threads (throughput / p99 latency)"
    "KFlex 1.23-2.83x over BMC, 2.33-3.01x over user space"
    (Kflex_apps.E2e.fig_memcached ~workers:8 ~requests ())

let fig3 () =
  print_cells "Figure 3: Memcached, 16 server threads"
    "benefits similar to 8 threads"
    (Kflex_apps.E2e.fig_memcached ~workers:16 ~requests ())

let fig4 () =
  print_cells "Figure 4: Redis at sk_skb vs user space (KeyDB)"
    "KFlex 1.61-2.14x throughput; benefit smaller than Memcached (TCP stack \
     still paid)"
    (Kflex_apps.E2e.fig_redis ~workers:8 ~requests ())

let fig7 () =
  print_cells
    "Figure 7: co-designed Memcached (user-space GC every 1s, shared heap)"
    "KFlex 2.2-2.9x throughput; tail-latency gain reduced by GC contention"
    (Kflex_apps.E2e.fig_codesign ~workers:8 ~requests ())

let fig6 () =
  hr "Figure 6: Redis ZADD (hashmap -> on-demand skiplist), 1 server thread";
  pf "  (paper: KFlex 1.65x throughput, 52.8%% lower p99)@.";
  List.iter
    (fun (r : Kflex_apps.E2e.row) ->
      pf "    %-22s %6.3f MOps/s   p99 %8.1f us@." r.Kflex_apps.E2e.system
        r.Kflex_apps.E2e.throughput_mops r.Kflex_apps.E2e.p99_us)
    (Kflex_apps.E2e.fig_zadd ~requests:(requests / 2) ())

(* ---- Figure 5: data structures ---------------------------------------- *)

let ds_preload inst ~n =
  for i = 0 to n - 1 do
    ignore
      (Kflex_apps.Datastructs.update inst ~key:(Int64.of_int i)
         ~value:(Int64.of_int (i * 3)))
  done

let ds_measure inst ~n ~samples =
  let rng = Kflex_workload.Rng.create ~seed:99L in
  let avg f =
    let total = ref 0 in
    for _ = 1 to samples do
      total := !total + f (Int64.of_int (Kflex_workload.Rng.int rng n))
    done;
    float_of_int !total /. float_of_int samples
  in
  let upd =
    avg (fun k -> snd (Kflex_apps.Datastructs.update inst ~key:k ~value:123L))
  in
  let lkp = avg (fun k -> snd (Kflex_apps.Datastructs.lookup inst ~key:k)) in
  let del =
    avg (fun k ->
        let _, c = Kflex_apps.Datastructs.delete inst ~key:k in
        (* reinsert to keep the size stable *)
        ignore (Kflex_apps.Datastructs.update inst ~key:k ~value:7L);
        c)
  in
  (upd, lkp, del)

let fig5 () =
  hr "Figure 5: data structures offloaded with KFlex (per-op latency, ns)";
  pf "  (paper: KFlex ~9%% throughput / ~31.7%% latency overhead vs KMod;@.";
  pf "   performance mode recovers 3-4%% on pointer-chasing structures)@.";
  pf "  %-12s %-8s %12s %12s %12s %10s %10s@." "structure" "op" "KMod(ns)"
    "KFlex-PM(ns)" "KFlex(ns)" "PM ovr" "KFlex ovr";
  let samples = 200 in
  List.iter
    (fun kind ->
      let n =
        match kind with
        | Kflex_apps.Datastructs.Linked_list ->
            4096 (* paper uses 64K elements; scaled for the interpreter *)
        | _ -> 16384
      in
      let is_sketch =
        kind = Kflex_apps.Datastructs.Countmin
        || kind = Kflex_apps.Datastructs.Countsketch
      in
      let measure mode =
        let inst = Kflex_apps.Datastructs.create ~mode kind in
        ds_preload inst ~n:(if is_sketch then 4096 else n);
        ds_measure inst ~n ~samples
      in
      let a3 = measure Kflex_apps.Datastructs.M_kmod in
      let b3 = measure Kflex_apps.Datastructs.M_perf in
      let c3 = measure Kflex_apps.Datastructs.M_kflex in
      let row op =
        let m (u, l, d) = match op with `U -> u | `L -> l | `D -> d in
        let a = m a3 and b = m b3 and c = m c3 in
        let ns x = x *. Kflex_kernel.Cost.insn_ns in
        pf "  %-12s %-8s %12.0f %12.0f %12.0f %9.1f%% %9.1f%%@."
          (Kflex_apps.Datastructs.name kind)
          (match op with `U -> "update" | `L -> "lookup" | `D -> "delete")
          (ns a) (ns b) (ns c)
          (100. *. ((b -. a) /. a))
          (100. *. ((c -. a) /. a))
      in
      row `U;
      row `L;
      if not is_sketch then row `D)
    Kflex_apps.Datastructs.all

(* ---- VM backend: interpreter vs closure-compiled (BENCH_vm.json) ------- *)

(* Wall-clock insns/sec of the three execution engines — interpreter,
   compiled without fusion, compiled with superinstruction fusion — on the
   Fig. 5 data-structure workloads. Each variant runs the identical
   deterministic op sequence on a freshly built structure; the cost-model
   stats must be bit-identical across variants (the compiled backends only
   change wall-clock time, never accounting). *)

type jit_meas = {
  jm_stats : Kflex_runtime.Vm.stats;
  jm_secs : float;
  jm_compile_ms : float;
  jm_fused : int;
  jm_mwords : float;  (* minor-heap words allocated inside the timed loop *)
}

let jit_variant kind ~opseq ~preload ~backend ~fuse =
  let inst = Kflex_apps.Datastructs.create kind in
  let loaded = Kflex_apps.Datastructs.loaded inst in
  let compile_ms, fused =
    match backend with
    | `Interp -> (0., 0)
    | `Compiled ->
        let t0 = Unix.gettimeofday () in
        let jit = Kflex_runtime.Vm.precompile ~fuse loaded.Kflex.ext in
        ( (Unix.gettimeofday () -. t0) *. 1000.,
          Kflex_runtime.Jit.fused_pairs jit )
  in
  ds_preload inst ~n:preload;
  (* packets built outside the timed window; the PRNG stream (skiplist
     tower levels) restarts identically for every variant *)
  let pkts =
    Array.map
      (fun (op, key) -> Kflex_apps.Datastructs.op_packet ~op ~key ~value:1L)
      opseq
  in
  Kflex_runtime.Vm.seed_prandom 0x2545F4914F6CDD1DL;
  let stats = Kflex_runtime.Vm.fresh_stats () in
  (* level the GC playing field: later variants otherwise inherit the
     earlier variants' heap and pay their major collections *)
  Gc.compact ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to Array.length pkts - 1 do
    match Kflex.run_packet loaded ~stats ~backend pkts.(i) with
    | Kflex_runtime.Vm.Finished _ -> ()
    | Kflex_runtime.Vm.Cancelled _ ->
        failwith ("jit bench: op cancelled on " ^ Kflex_apps.Datastructs.name kind)
  done;
  {
    jm_stats = stats;
    jm_secs = Unix.gettimeofday () -. t0;
    jm_compile_ms = compile_ms;
    jm_fused = fused;
    jm_mwords = Gc.minor_words () -. w0;
  }

(* Best-of-[reps] wall clock: the host's timing noise dwarfs the
   variant differences in a single pass, and the minimum is the standard
   robust estimator for deterministic workloads. Stats are deterministic,
   so any repetition's counters serve for the identity check. *)
let jit_best ~reps kind ~opseq ~preload ~backend ~fuse =
  let best = ref (jit_variant kind ~opseq ~preload ~backend ~fuse) in
  for _ = 2 to reps do
    let m = jit_variant kind ~opseq ~preload ~backend ~fuse in
    if m.jm_secs < !best.jm_secs then best := m
  done;
  !best

let stats_tuple (s : Kflex_runtime.Vm.stats) =
  (s.Kflex_runtime.Vm.insns, s.Kflex_runtime.Vm.guards,
   s.Kflex_runtime.Vm.checkpoints, s.Kflex_runtime.Vm.helper_calls,
   s.Kflex_runtime.Vm.helper_cost)

(* Allocation gate: the compiled hook-free hot path must allocate zero
   minor-heap words per retired instruction. A dedicated helper-free loop
   (frame spill/reload, guarded heap store+load, ALU chain, conditional back
   edge — every construct the compiler specializes) runs warmed at two
   iteration counts; the per-instruction rate is the words delta over the
   insns delta, which cancels the constant per-exec cost (outcome
   constructor, the one heap-base helper call). *)
let alloc_gate_words_per_insn () =
  let open Kflex_bpf in
  let items iters =
    Asm.
      [
        call "kflex_heap_base";
        mov Reg.R6 Reg.R0;
        movi Reg.R7 (Int64.of_int iters);
        label "loop";
        stx Insn.U64 Reg.R10 (-8) Reg.R7;
        ldx Insn.U64 Reg.R1 Reg.R10 (-8);
        alui Insn.And Reg.R1 0xffL;
        alui Insn.Mul Reg.R1 8L;
        mov Reg.R2 Reg.R6;
        alu Insn.Add Reg.R2 Reg.R1;
        stx Insn.U64 Reg.R2 64 Reg.R7;
        ldx Insn.U64 Reg.R3 Reg.R2 64;
        alu Insn.Xor Reg.R3 Reg.R7;
        alui Insn.Sub Reg.R7 1L;
        jmpi Insn.Ne Reg.R7 0L "loop";
        mov Reg.R0 Reg.R3;
        exit_;
      ]
  in
  let run iters =
    let prog = Asm.assemble ~name:"alloc_gate" (items iters) in
    let heap = Kflex_runtime.Heap.create ~size:65536L () in
    Kflex_runtime.Heap.populate heap ~off:0L ~len:4096L;
    let analysis =
      match
        Kflex_verifier.Verify.run ~mode:Kflex_verifier.Verify.Kflex
          ~contracts:Kflex.contracts ~ctx_size:64
          ~heap_size:(Kflex_runtime.Heap.size heap) prog
      with
      | Ok a -> a
      | Error e ->
          Format.kasprintf failwith "alloc gate: verify: %a"
            Kflex_verifier.Verify.pp_error e
    in
    let kie = Kflex_kie.Instrument.run analysis in
    let ext = Kflex_runtime.Vm.create ~heap ~quantum:max_int ~helpers:[] kie in
    let ctx = Bytes.make 64 '\000' in
    let stats = Kflex_runtime.Vm.fresh_stats () in
    let go () =
      match Kflex_runtime.Vm.exec ext ~ctx ~stats ~backend:`Compiled () with
      | Kflex_runtime.Vm.Finished _ -> ()
      | Kflex_runtime.Vm.Cancelled _ -> failwith "alloc gate: cancelled"
    in
    go () (* first run compiles and warms the pooled state *);
    let i0 = stats.Kflex_runtime.Vm.insns in
    let w0 = Gc.minor_words () in
    go ();
    (Gc.minor_words () -. w0, stats.Kflex_runtime.Vm.insns - i0)
  in
  let w1, i1 = run 50_000 in
  let w2, i2 = run 100_000 in
  (w2 -. w1) /. float_of_int (i2 - i1)

let jit_bench ~smoke =
  hr "VM backend: interpreter vs closure-compiled (insns/sec wall-clock)";
  let ops = if smoke then 1_500 else 20_000 in
  pf "  (%d ops per variant, 25%% update / 75%% lookup; identical stats \
      required)@." ops;
  pf "  %-12s %12s %12s %12s %8s %8s %6s %8s@." "structure" "interp/s"
    "compiled/s" "fused/s" "spd" "spd+f" "fused#" "w/insn";
  let rows = ref [] in
  let mismatches = ref 0 in
  List.iter
    (fun kind ->
      let n =
        match kind with
        | Kflex_apps.Datastructs.Linked_list -> if smoke then 192 else 1024
        | _ -> if smoke then 1024 else 8192
      in
      let preload =
        match kind with
        | Kflex_apps.Datastructs.Countmin | Kflex_apps.Datastructs.Countsketch
          -> min n 2048
        | _ -> n
      in
      let opseq =
        let rng = Kflex_workload.Rng.create ~seed:7L in
        Array.init ops (fun i ->
            let op = if i land 3 = 0 then 0 else 1 (* 25% upd / 75% lkp *) in
            (op, Int64.of_int (Kflex_workload.Rng.int rng n)))
      in
      let reps = if smoke then 2 else 15 in
      let v backend fuse = jit_best ~reps kind ~opseq ~preload ~backend ~fuse in
      let mi = v `Interp true in
      let mc = v `Compiled false in
      let mf = v `Compiled true in
      let same =
        stats_tuple mi.jm_stats = stats_tuple mc.jm_stats
        && stats_tuple mi.jm_stats = stats_tuple mf.jm_stats
      in
      if not same then begin
        incr mismatches;
        let p (a, b, c, d, e) = Printf.sprintf "(%d,%d,%d,%d,%d)" a b c d e in
        pf "  %-12s STATS MISMATCH interp %s compiled %s fused %s@."
          (Kflex_apps.Datastructs.name kind)
          (p (stats_tuple mi.jm_stats))
          (p (stats_tuple mc.jm_stats))
          (p (stats_tuple mf.jm_stats))
      end;
      let insns = float_of_int mi.jm_stats.Kflex_runtime.Vm.insns in
      let ips m = insns /. m.jm_secs in
      let spd_c = ips mc /. ips mi and spd_f = ips mf /. ips mi in
      pf "  %-12s %12.3e %12.3e %12.3e %7.2fx %7.2fx %6d %8.4f@."
        (Kflex_apps.Datastructs.name kind)
        (ips mi) (ips mc) (ips mf) spd_c spd_f mf.jm_fused
        (mf.jm_mwords /. insns);
      rows :=
        (kind, mi, mc, mf, same) :: !rows)
    Kflex_apps.Datastructs.all;
  let rows = List.rev !rows in
  (* geometric mean and minimum of the fused speedup across workloads *)
  let speedups =
    List.map
      (fun (_, mi, _, mf, _) -> mi.jm_secs /. mf.jm_secs)
      rows
  in
  let geomean =
    exp (List.fold_left (fun a s -> a +. log s) 0. speedups
         /. float_of_int (List.length speedups))
  in
  let minimum = List.fold_left min infinity speedups in
  pf "  fused speedup: min %.2fx, geomean %.2fx%s@." minimum geomean
    (if !mismatches = 0 then "" else "  (STATS MISMATCHES!)");
  let gate_wpi = alloc_gate_words_per_insn () in
  let gate_ok = gate_wpi = 0. in
  pf "  alloc gate: %.6f minor words/insn on the hook-free compiled loop (%s)@."
    gate_wpi
    (if gate_ok then "PASS" else "FAIL — hot path allocates");
  (* machine-readable results *)
  let oc = open_out "BENCH_vm.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"ops_per_variant\": %d,\n  \"smoke\": %b,\n  \"workloads\": [\n"
    ops smoke;
  List.iteri
    (fun i (kind, mi, mc, mf, same) ->
      let insns = float_of_int mi.jm_stats.Kflex_runtime.Vm.insns in
      let ips m = insns /. m.jm_secs in
      p "    {\"name\": %S, \"insns\": %d, \"guards\": %d, \"checkpoints\": \
         %d, \"helper_cost\": %d,\n"
        (Kflex_apps.Datastructs.name kind)
        mi.jm_stats.Kflex_runtime.Vm.insns mi.jm_stats.Kflex_runtime.Vm.guards
        mi.jm_stats.Kflex_runtime.Vm.checkpoints
        mi.jm_stats.Kflex_runtime.Vm.helper_cost;
      p "     \"interp_insns_per_sec\": %.0f, \"compiled_insns_per_sec\": \
         %.0f, \"fused_insns_per_sec\": %.0f,\n"
        (ips mi) (ips mc) (ips mf);
      p "     \"speedup_compiled\": %.3f, \"speedup_fused\": %.3f, \
         \"compile_ms\": %.3f, \"fused_pairs\": %d, \
         \"fused_minor_words_per_insn\": %.6f, \"stats_identical\": %b}%s\n"
        (ips mc /. ips mi)
        (ips mf /. ips mi)
        mf.jm_compile_ms mf.jm_fused
        (mf.jm_mwords /. insns)
        same
        (if i = List.length rows - 1 then "" else ",");
      ignore same)
    rows;
  p "  ],\n  \"summary\": {\"min_speedup_fused\": %.3f, \
     \"geomean_speedup_fused\": %.3f, \"stats_identical\": %b, \
     \"alloc_gate_minor_words_per_insn\": %.6f, \"alloc_gate_passed\": %b}\n}\n"
    minimum geomean (!mismatches = 0) gate_wpi gate_ok;
  close_out oc;
  pf "  wrote BENCH_vm.json@.";
  if !mismatches > 0 || not gate_ok then exit 1

(* ---- Engine: multi-tenant scaling curve (BENCH_engine.json) ------------ *)

(* Aggregate throughput of the multi-tenant engine as shards and chain
   length grow, measured in DES virtual time (the container is single-core,
   so the per-CPU scaling claim is about the simulated shard model, not
   host parallelism): each shard serves its own FIFO of flow-hashed events,
   service time = the chain's charged cost through the calibrated model.
   Also checks the single-shard engine is observationally identical to the
   facade on every fuzz reproducer (the chain oracle run as a self-pair). *)

let engine_corpus_identity () =
  let dir = "test/corpus" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then (0, 0, 0)
  else
    Array.fold_left
      (fun (ok, skip, bad) f ->
        if Filename.check_suffix f ".kfxr" then begin
          let t = Kflex_fuzz.Corpus.read (Filename.concat dir f) in
          match Kflex_fuzz.Oracle.chain_equiv t.Kflex_fuzz.Corpus.config
                  t.Kflex_fuzz.Corpus.prog t.Kflex_fuzz.Corpus.prog
          with
          | Kflex_fuzz.Oracle.Pass -> (ok + 1, skip, bad)
          | Kflex_fuzz.Oracle.Rejected _ -> (ok, skip + 1, bad)
          | Kflex_fuzz.Oracle.Fail fl ->
              pf "  corpus DIVERGENCE %s: %s@." f fl.Kflex_fuzz.Oracle.detail;
              (ok, skip, bad + 1)
        end
        else (ok, skip, bad))
      (0, 0, 0) (Sys.readdir dir)

type eng_row = {
  er_kind : Kflex_apps.Datastructs.kind;
  er_shards : int;
  er_chain : int;
  er_res : Kflex_sim.Closed_loop.result;
  er_tot : Kflex_engine.Engine.totals;
}

let engine_bench ~smoke =
  hr "Engine: multi-tenant scaling (shards x chain, DES virtual time)";
  let events = if smoke then 1_200 else min 6_000 (max 2_000 (requests / 5)) in
  let structures =
    [
      Kflex_apps.Datastructs.Hashmap; Kflex_apps.Datastructs.Rbtree;
      Kflex_apps.Datastructs.Skiplist;
    ]
  in
  let keyspace = 4096 in
  (* deterministic op/key/flow sequence shared by every configuration *)
  let opseq =
    let rng = Kflex_workload.Rng.create ~seed:11L in
    Array.init events (fun i ->
        let op = if i land 3 = 0 then 0 else 1 in
        ( op,
          Int64.of_int (Kflex_workload.Rng.int rng keyspace),
          1024 + Kflex_workload.Rng.int rng 60000 ))
  in
  let pkts =
    Array.map
      (fun (op, key, src_port) ->
        let b = Bytes.make 17 '\000' in
        Bytes.set b 0 (Char.chr op);
        Bytes.set_int64_le b 1 key;
        Bytes.set_int64_le b 9 1L;
        Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp ~src_port
          ~dst_port:9 b)
      opseq
  in
  let run_config compiled ~shards ~chain =
    let eng = Kflex_engine.Engine.create ~shards () in
    let handles =
      List.init chain (fun _ ->
          match
            Kflex_engine.Engine.attach eng
              ~globals_size:
                compiled.Kflex_eclang.Compile.layout
                  .Kflex_eclang.Compile.globals_size
              ~heap_size:(Int64.shift_left 1L 22)
              ~hook:Kflex_kernel.Hook.Xdp compiled.Kflex_eclang.Compile.prog
          with
          | Ok h -> h
          | Error e ->
              Format.kasprintf failwith "engine bench: rejected: %a"
                Kflex_verifier.Verify.pp_error e)
    in
    let res =
      Kflex_sim.Closed_loop.run_engine ~clients:32 ~rtt_ns:2_000.
        ~requests:events
        ~gen:(fun i -> pkts.(i))
        ~ns_of_cost:(fun c ->
          Kflex_kernel.Cost.xdp_service_ns
            ~compute_ns:(float_of_int c *. Kflex_kernel.Cost.insn_ns)
            ~reply:false)
        eng
    in
    let tot = Kflex_engine.Engine.totals eng in
    List.iter (fun h -> Kflex_engine.Engine.detach eng h) handles;
    (res, tot)
  in
  pf "  (%d events, 25%% update / 75%% lookup, 32 clients; throughput is@."
    events;
  pf "   aggregate MOps/s in simulated time across per-CPU shards)@.";
  pf "  %-10s %5s %5s %12s %10s %8s %6s@." "structure" "shard" "chain"
    "MOps/s" "p99(us)" "cancel" "leak";
  let rows = ref [] in
  List.iter
    (fun kind ->
      let compiled =
        Kflex_eclang.Compile.compile_string
          ~name:(Kflex_apps.Datastructs.name kind ^ "_chain")
          (Kflex_apps.Datastructs.chain_source kind)
      in
      List.iter
        (fun chain ->
          List.iter
            (fun shards ->
              let res, tot = run_config compiled ~shards ~chain in
              pf "  %-10s %5d %5d %12.3f %10.1f %8d %6d@."
                (Kflex_apps.Datastructs.name kind)
                shards chain res.Kflex_sim.Closed_loop.throughput_mops
                res.Kflex_sim.Closed_loop.p99_us
                tot.Kflex_engine.Engine.cancelled
                tot.Kflex_engine.Engine.leaked;
              rows :=
                {
                  er_kind = kind;
                  er_shards = shards;
                  er_chain = chain;
                  er_res = res;
                  er_tot = tot;
                }
                :: !rows)
            [ 1; 2; 4 ])
        [ 1; 3 ])
    structures;
  let rows = List.rev !rows in
  let tp r = r.er_res.Kflex_sim.Closed_loop.throughput_mops in
  let speedups =
    List.filter_map
      (fun r ->
        if r.er_shards <> 4 then None
        else
          let base =
            List.find
              (fun b ->
                b.er_kind = r.er_kind && b.er_chain = r.er_chain
                && b.er_shards = 1)
              rows
          in
          Some (r.er_kind, r.er_chain, tp r /. tp base))
      rows
  in
  let min_speedup =
    List.fold_left (fun a (_, _, s) -> Stdlib.min a s) infinity speedups
  in
  List.iter
    (fun (k, c, s) ->
      pf "  %-10s chain %d: 4-shard speedup %.2fx@."
        (Kflex_apps.Datastructs.name k)
        c s)
    speedups;
  let corpus_ok, corpus_skip, corpus_bad = engine_corpus_identity () in
  pf "  corpus identity: %d identical, %d skipped, %d divergent@." corpus_ok
    corpus_skip corpus_bad;
  pf "  min 4-shard speedup %.2fx (gate: > 1.8x)@." min_speedup;
  (* --- shared-map configs ---------------------------------------------- *)
  (* Cross-shard state through engine-shared maps, same DES closed loop.
     percpu_counter: every event bumps a per-key counter in a shared Percpu
     map — banks are shard-local, so scaling must survive the shared map.
     rcu_read_mostly: <=1% writes against the shared RCU map, compared to
     the same program over a tenant-private Hash map — wait-free snapshot
     reads must stay within 20% of the uncontended private baseline. *)
  let shared_pkts ~write_every =
    let rng = Kflex_workload.Rng.create ~seed:13L in
    Array.init events (fun i ->
        let b = Bytes.make 17 '\000' in
        if i mod write_every = 0 then Bytes.set b 0 '\001';
        Bytes.set_int64_le b 1
          (Int64.of_int (Kflex_workload.Rng.int rng keyspace));
        Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp
          ~src_port:(1024 + Kflex_workload.Rng.int rng 60000)
          ~dst_port:9 b)
  in
  let counter_src = {|
fn prog(c: ctx) -> u64 {
  var kbuf: bytes[8];
  var vbuf: bytes[8];
  st64(&kbuf, 0, pkt_read_u64(c, 1) & 1023);
  var n: u64 = 0;
  if (bpf_map_lookup(3, &kbuf, &vbuf) == 1) { n = ld64(&vbuf, 0); }
  st64(&vbuf, 0, n + 1);
  bpf_map_update(3, &kbuf, &vbuf);
  return 2;
}
|}
  in
  let read_mostly_src = {|
fn prog(c: ctx) -> u64 {
  var kbuf: bytes[8];
  var vbuf: bytes[8];
  st64(&kbuf, 0, pkt_read_u64(c, 1) & 1023);
  if (pkt_read_u8(c, 0) == 1) {
    var n: u64 = 0;
    if (bpf_map_lookup(3, &kbuf, &vbuf) == 1) { n = ld64(&vbuf, 0); }
    st64(&vbuf, 0, n + 1);
    bpf_map_update(3, &kbuf, &vbuf);
    return 2;
  }
  if (bpf_map_lookup(3, &kbuf, &vbuf) == 1) { return 2; }
  return 1;
}
|}
  in
  let run_shared ~name ~src ~pkts ~fd3 ~shards =
    let compiled =
      Kflex_eclang.Compile.compile_string ~name ~use_heap:false src
    in
    let eng = Kflex_engine.Engine.create ~shards () in
    let configure =
      match fd3 with
      | `Shared make ->
          ignore (Kflex_engine.Engine.share_map eng (make ~shards));
          None
      | `Private make ->
          Some
            (fun ~shard:_ kernel _heap ->
              ignore
                (Kflex_kernel.Map.register
                   (Kflex_kernel.Helpers.maps kernel)
                   (make ~shards)))
    in
    (match
       Kflex_engine.Engine.attach eng ~name ?configure
         ~hook:Kflex_kernel.Hook.Xdp compiled.Kflex_eclang.Compile.prog
     with
    | Ok _ -> ()
    | Error e ->
        Format.kasprintf failwith "engine bench (%s): rejected: %a" name
          Kflex_verifier.Verify.pp_error e);
    let res =
      Kflex_sim.Closed_loop.run_engine ~clients:32 ~rtt_ns:2_000.
        ~requests:events
        ~gen:(fun i -> pkts.(i))
        ~ns_of_cost:(fun c ->
          Kflex_kernel.Cost.xdp_service_ns
            ~compute_ns:(float_of_int c *. Kflex_kernel.Cost.insn_ns)
            ~reply:false)
        eng
    in
    let tot = Kflex_engine.Engine.totals eng in
    Kflex_engine.Engine.shutdown eng;
    (res, tot)
  in
  let percpu_map ~shards =
    Kflex_kernel.Map.create ~kind:Kflex_kernel.Map.Percpu ~cpus:shards
      ~max_entries:1024 ()
  in
  let rcu_map ~shards =
    Kflex_kernel.Map.create ~kind:Kflex_kernel.Map.Rcu_shared ~cpus:shards
      ~max_entries:1024 ()
  in
  let hash_map ~shards:_ =
    Kflex_kernel.Map.create ~kind:Kflex_kernel.Map.Hash ~max_entries:1024 ()
  in
  let counter_pkts = shared_pkts ~write_every:1 in
  let rm_pkts = shared_pkts ~write_every:128 in
  pf "  %-18s %5s %12s %8s %6s@." "shared config" "shard" "MOps/s" "cancel"
    "leak";
  let shared_rows = ref [] in
  let record name shards (res, (tot : Kflex_engine.Engine.totals)) =
    pf "  %-18s %5d %12.3f %8d %6d@." name shards
      res.Kflex_sim.Closed_loop.throughput_mops tot.Kflex_engine.Engine.cancelled
      tot.Kflex_engine.Engine.leaked;
    shared_rows := (name, shards, res, tot) :: !shared_rows;
    res.Kflex_sim.Closed_loop.throughput_mops
  in
  let pc1 =
    record "percpu_counter" 1
      (run_shared ~name:"percpu_counter" ~src:counter_src ~pkts:counter_pkts
         ~fd3:(`Shared percpu_map) ~shards:1)
  in
  let pc4 =
    record "percpu_counter" 4
      (run_shared ~name:"percpu_counter" ~src:counter_src ~pkts:counter_pkts
         ~fd3:(`Shared percpu_map) ~shards:4)
  in
  let rcu4 =
    record "rcu_read_mostly" 4
      (run_shared ~name:"rcu_read_mostly" ~src:read_mostly_src ~pkts:rm_pkts
         ~fd3:(`Shared rcu_map) ~shards:4)
  in
  let hash4 =
    record "private_hash" 4
      (run_shared ~name:"private_hash" ~src:read_mostly_src ~pkts:rm_pkts
         ~fd3:(`Private hash_map) ~shards:4)
  in
  let shared_rows = List.rev !shared_rows in
  let percpu_speedup = pc4 /. pc1 in
  let rcu_ratio = rcu4 /. hash4 in
  let shared_leaks =
    List.fold_left
      (fun a (_, _, _, t) -> a + t.Kflex_engine.Engine.leaked)
      0 shared_rows
  in
  pf "  percpu 4-shard speedup %.2fx (gate: >= 2.5x)@." percpu_speedup;
  pf "  rcu read-mostly vs private hash %.2fx (gate: >= 0.8x)@." rcu_ratio;
  let leaks = List.fold_left (fun a r -> a + r.er_tot.Kflex_engine.Engine.leaked) 0 rows in
  let oc = open_out "BENCH_engine.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"events\": %d,\n  \"smoke\": %b,\n  \"configs\": [\n" events smoke;
  List.iteri
    (fun i r ->
      p "    {\"structure\": %S, \"shards\": %d, \"chain\": %d, \
         \"throughput_mops\": %.4f, \"p99_us\": %.2f, \"events\": %d, \
         \"cancelled\": %d, \"leaked\": %d}%s\n"
        (Kflex_apps.Datastructs.name r.er_kind)
        r.er_shards r.er_chain (tp r) r.er_res.Kflex_sim.Closed_loop.p99_us
        r.er_tot.Kflex_engine.Engine.events r.er_tot.Kflex_engine.Engine.cancelled
        r.er_tot.Kflex_engine.Engine.leaked
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n  \"scaling_4shard_vs_1\": [\n";
  List.iteri
    (fun i (k, c, s) ->
      p "    {\"structure\": %S, \"chain\": %d, \"speedup\": %.3f}%s\n"
        (Kflex_apps.Datastructs.name k)
        c s
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  p "  ],\n  \"shared_configs\": [\n";
  List.iteri
    (fun i (name, shards, res, (tot : Kflex_engine.Engine.totals)) ->
      p "    {\"config\": %S, \"shards\": %d, \"throughput_mops\": %.4f, \
         \"p99_us\": %.2f, \"events\": %d, \"cancelled\": %d, \"leaked\": \
         %d}%s\n"
        name shards res.Kflex_sim.Closed_loop.throughput_mops
        res.Kflex_sim.Closed_loop.p99_us tot.Kflex_engine.Engine.events
        tot.Kflex_engine.Engine.cancelled tot.Kflex_engine.Engine.leaked
        (if i = List.length shared_rows - 1 then "" else ","))
    shared_rows;
  let shared_ok =
    percpu_speedup >= 2.5 && rcu_ratio >= 0.8 && shared_leaks = 0
  in
  p "  ],\n  \"summary\": {\"min_speedup_4shard\": %.3f, \"leaked\": %d, \
     \"corpus_identical\": %d, \"corpus_skipped\": %d, \"corpus_divergent\": \
     %d, \"percpu_speedup_4shard\": %.3f, \"rcu_vs_private_hash\": %.3f, \
     \"shared_leaked\": %d, \"gate_passed\": %b}\n}\n"
    min_speedup leaks corpus_ok corpus_skip corpus_bad percpu_speedup
    rcu_ratio shared_leaks
    (min_speedup > 1.8 && corpus_bad = 0 && leaks = 0 && shared_ok);
  close_out oc;
  pf "  wrote BENCH_engine.json@.";
  if min_speedup <= 1.8 || corpus_bad > 0 || leaks > 0 || not shared_ok then
    exit 1

(* ---- Serve: open-loop wall-clock front end (BENCH_serve.json) ---------- *)

(* The §5 serving shape end to end: wire-protocol ingest through the
   per-connection rings, Zipfian keys, open-loop arrivals, the burner
   tenant putting reaper cancellations into the tail. Three measurements:

   - the offered-load/latency curve runs THREADED on the WALL CLOCK,
     calibrated against the host's measured capacity so the sweep crosses
     into genuine overload;
   - shard scaling runs DETERMINISTIC in VIRTUAL time (the container is
     single-core, so wall-clock 4-shard scaling measures the host's one
     CPU, not the shard model — same convention as BENCH_engine.json);
   - the determinism gate runs the same seeded schedule twice and demands
     bit-equal verdict-stream digests with zero leaks. *)

module OL = Kflex_serve.Open_loop

type serve_row = { sr_ratio : float; sr_o : OL.outcome }

let serve_bench ~smoke =
  hr "Serve: open-loop front end (wall-clock latency, virtual-time scaling)";
  let point_requests = if smoke then 3_000 else 100_000 in
  let base = { OL.default with OL.requests = point_requests } in
  (* 1. determinism gate: the ninth check, end to end through the wire *)
  let det_cfg =
    { base with OL.requests = (if smoke then 2_000 else 20_000) }
  in
  let det_ok, d1, d2 = OL.determinism_check ~shards:2 det_cfg in
  pf "  determinism: run1 %Lx run2 %Lx -> %s@." d1 d2
    (if det_ok then "bit-identical" else "DIVERGENT");
  (* 2. wall capacity: deep overload, achieved throughput = capacity *)
  let cal_cfg =
    {
      base with
      OL.requests = (if smoke then 2_000 else 30_000);
      rate = 50_000_000.0;
    }
  in
  let cal = OL.run_threaded ~shards:2 cal_cfg in
  let capacity = cal.OL.achieved_rps in
  pf "  wall capacity (2 shards, deep overload): %.0f req/s@." capacity;
  (* 3. the offered-load curve, crossing overload *)
  let ratios = [ 0.3; 0.6; 0.85; 1.0; 1.3; 1.8 ] in
  pf "  %-8s %12s %12s %9s %9s %9s %7s %5s@." "offered" "req/s" "achieved"
    "p50(us)" "p99(us)" "p999(us)" "cancel" "leak";
  let curve =
    List.map
      (fun ratio ->
        let o =
          OL.run_threaded ~shards:2
            { base with OL.rate = ratio *. capacity }
        in
        pf "  %-8s %12.0f %12.0f %9.1f %9.1f %9.1f %7d %5d@."
          (Printf.sprintf "%.2fx" ratio)
          o.OL.offered_rps o.OL.achieved_rps o.OL.p50_us o.OL.p99_us
          o.OL.p999_us o.OL.cancelled o.OL.leaked;
        { sr_ratio = ratio; sr_o = o })
      ratios
  in
  (* 4. shard scaling in virtual time, deep overload (throughput = the
     shard model's capacity, as in BENCH_engine.json) *)
  let scale_cfg =
    { base with OL.rate = 20_000_000.0; requests = point_requests }
  in
  let scaling =
    List.map
      (fun shards ->
        let o = OL.run_deterministic ~shards scale_cfg in
        pf "  %d shard(s): %12.0f req/s (virtual), %d cancelled, %d leaked@."
          shards o.OL.achieved_rps o.OL.cancelled o.OL.leaked;
        (shards, o))
      [ 1; 2; 4 ]
  in
  let ach sh = (List.assoc sh scaling).OL.achieved_rps in
  let speedup4 = ach 4 /. ach 1 in
  pf "  4-shard vs 1-shard (virtual time): %.2fx (gate: >= 2.5x)@." speedup4;
  (* gates *)
  let leaks =
    List.fold_left (fun a r -> a + r.sr_o.OL.leaked) cal.OL.leaked curve
    + List.fold_left (fun a (_, o) -> a + o.OL.leaked) 0 scaling
  in
  let overload_cancelled =
    List.fold_left
      (fun a r -> if r.sr_ratio >= 1.0 then a + r.sr_o.OL.cancelled else a)
      0 curve
    + List.fold_left (fun a (_, o) -> a + o.OL.cancelled) 0 scaling
  in
  let tails_finite =
    List.for_all
      (fun r -> Float.is_finite r.sr_o.OL.p999_us && r.sr_o.OL.p999_us > 0.0)
      curve
  in
  let complete =
    List.for_all (fun r -> r.sr_o.OL.completed = base.OL.requests) curve
  in
  let gate =
    det_ok && leaks = 0 && tails_finite && complete && overload_cancelled > 0
    && speedup4 >= 2.5
  in
  let oc = open_out "BENCH_serve.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"smoke\": %b,\n  \"proto\": \"memcached\",\n" smoke;
  p "  \"requests_per_point\": %d,\n  \"conns\": %d,\n" base.OL.requests
    base.OL.conns;
  p "  \"zipf_s\": %.2f,\n  \"set_frac\": %.2f,\n  \"deadline_us\": %.1f,\n"
    base.OL.zipf_s base.OL.set_frac base.OL.deadline_us;
  p "  \"determinism\": {\"digest_run1\": \"%Lx\", \"digest_run2\": \"%Lx\", \
     \"bit_identical\": %b},\n"
    d1 d2 det_ok;
  p "  \"wall_capacity_rps\": %.0f,\n" capacity;
  p "  \"curve\": [\n";
  List.iteri
    (fun i r ->
      p "    {\"mode\": \"wall_clock\", \"shards\": 2, \"offered_ratio\": \
         %.2f, \"offered_rps\": %.0f, \"achieved_rps\": %.0f, \"p50_us\": \
         %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f, \"mean_us\": %.2f, \
         \"completed\": %d, \"cancelled\": %d, \"leaked\": %d}%s\n"
        r.sr_ratio r.sr_o.OL.offered_rps r.sr_o.OL.achieved_rps
        r.sr_o.OL.p50_us r.sr_o.OL.p99_us r.sr_o.OL.p999_us r.sr_o.OL.mean_us
        r.sr_o.OL.completed r.sr_o.OL.cancelled r.sr_o.OL.leaked
        (if i = List.length curve - 1 then "" else ","))
    curve;
  p "  ],\n  \"shard_scaling\": {\"mode\": \"virtual_time\", \"note\": \
     \"deterministic open loop in deep overload; single-core container, \
     same convention as BENCH_engine.json\", \"rows\": [\n";
  List.iteri
    (fun i (sh, o) ->
      p "    {\"shards\": %d, \"achieved_rps\": %.0f, \"p999_us\": %.2f, \
         \"cancelled\": %d, \"leaked\": %d}%s\n"
        sh o.OL.achieved_rps o.OL.p999_us o.OL.cancelled o.OL.leaked
        (if i = List.length scaling - 1 then "" else ","))
    scaling;
  p "  ], \"speedup_4shard_vs_1\": %.3f},\n" speedup4;
  p "  \"summary\": {\"determinism_ok\": %b, \"leaked\": %d, \
     \"overload_cancelled\": %d, \"tails_finite\": %b, \"speedup_4shard\": \
     %.3f, \"gate_passed\": %b}\n}\n"
    det_ok leaks overload_cancelled tails_finite speedup4 gate;
  close_out oc;
  pf "  wrote BENCH_serve.json@.";
  if not gate then begin
    pf
      "  serve gate FAILED (determinism %b, leaks %d, cancelled-in-overload \
       %d, tails finite %b, speedup %.2fx)@."
      det_ok leaks overload_cancelled tails_finite speedup4;
    exit 1
  end

(* ---- Table 3: guard elision ------------------------------------------- *)

let verify_ds prog =
  Kflex_verifier.Verify.run ~mode:Kflex_verifier.Verify.Kflex
    ~contracts:Kflex.contracts ~ctx_size:Kflex_kernel.Hook.ctx_size
    ~heap_size:(Int64.shift_left 1L 24) prog

(* Run [f] with the known-bits half of the verifier's domain disabled, i.e.
   with the plain interval analysis the seed shipped. Used to measure how
   many extra guards the tnum domain elides. *)
let interval_only f =
  Kflex_verifier.Range.set_tnum false;
  Fun.protect ~finally:(fun () -> Kflex_verifier.Range.set_tnum true) f

(* (sites, elided interval-only, elided interval+tnum) for one compiled op;
   None if verification fails. *)
let elision_counts prog =
  let count analysis =
    let kie = Kflex_kie.Instrument.run analysis in
    kie.Kflex_kie.Instrument.report
  in
  match (interval_only (fun () -> verify_ds prog), verify_ds prog) with
  | Ok a_int, Ok a_tnum ->
      let r_int = count a_int and r_tnum = count a_tnum in
      Some (r_int, r_tnum)
  | _ -> None

let table3 () =
  hr "Table 3: SFI guards elided by the verifier's range analysis";
  pf "  (paper: 76%% of pointer-manipulation guards elided on average;@.";
  pf "   el(int) = interval domain only, el(+tnum) = with known bits)@.";
  pf "  %-24s %6s %8s %9s %4s %8s %9s@." "function" "sites" "el(int)"
    "el(+tnum)" "d" "emitted" "elided%";
  let total_sites = ref 0
  and total_int = ref 0
  and total_tnum = ref 0 in
  List.iter
    (fun kind ->
      List.iter
        (fun (opname, op) ->
          let src = Kflex_apps.Datastructs.op_source kind op in
          let compiled =
            Kflex_eclang.Compile.compile_string
              ~name:(Kflex_apps.Datastructs.name kind ^ "_" ^ opname)
              src
          in
          match elision_counts compiled.Kflex_eclang.Compile.prog with
          | None ->
              pf "  %-24s VERIFY ERROR@."
                (Kflex_apps.Datastructs.name kind ^ " " ^ opname)
          | Some (r_int, r) ->
              total_sites := !total_sites + r.Kflex_kie.Report.counted_sites;
              total_int := !total_int + r_int.Kflex_kie.Report.elided;
              total_tnum := !total_tnum + r.Kflex_kie.Report.elided;
              pf "  %-24s %6d %8d %9d %+4d %8d %8.0f%%@."
                (Kflex_apps.Datastructs.name kind ^ " " ^ opname)
                r.Kflex_kie.Report.counted_sites r_int.Kflex_kie.Report.elided
                r.Kflex_kie.Report.elided
                (r.Kflex_kie.Report.elided - r_int.Kflex_kie.Report.elided)
                r.Kflex_kie.Report.emitted
                (100. *. Kflex_kie.Report.elision_ratio r))
        [ ("update", `Update); ("lookup", `Lookup); ("delete", `Delete) ])
    Kflex_apps.Datastructs.all;
  if !total_sites > 0 then
    pf "  %-24s %6d %8d %9d %+4d %8s %8.0f%%@." "TOTAL" !total_sites !total_int
      !total_tnum
      (!total_tnum - !total_int)
      ""
      (100. *. float_of_int !total_tnum /. float_of_int !total_sites)

(* ---- Ablation: does verification reduce SFI overhead? (§5.4) ----------- *)

(* Table 3 counts guards statically; this ablation measures the runtime
   cost the elision saves, by running the same workload with the range
   analysis honoured vs ignored (every heap access guarded). *)
let ablation () =
  hr "Ablation (§5.4): guard elision ON vs OFF (per-op cost units)";
  pf "  %-12s %10s %12s %12s %10s %8s %9s@." "structure" "KMod" "KFlex"
    "no-elision" "saved" "el(int)" "el(+tnum)";
  List.iter
    (fun kind ->
      let static_elided =
        (* static elision counts for this structure's update op, with and
           without the known-bits domain *)
        let compiled =
          Kflex_eclang.Compile.compile_string
            ~name:(Kflex_apps.Datastructs.name kind ^ "_update")
            (Kflex_apps.Datastructs.op_source kind `Update)
        in
        elision_counts compiled.Kflex_eclang.Compile.prog
      in
      let cost mode =
        let inst = Kflex_apps.Datastructs.create ~mode kind in
        for i = 0 to 4095 do
          ignore
            (Kflex_apps.Datastructs.update inst ~key:(Int64.of_int i)
               ~value:1L)
        done;
        let total = ref 0 in
        for i = 0 to 1023 do
          let _, c =
            Kflex_apps.Datastructs.update inst ~key:(Int64.of_int (i * 3))
              ~value:2L
          in
          total := !total + c
        done;
        float_of_int !total /. 1024.
      in
      let kmod = cost Kflex_apps.Datastructs.M_kmod in
      let kflex = cost Kflex_apps.Datastructs.M_kflex in
      let noel = cost Kflex_apps.Datastructs.M_noelide in
      let el_int, el_tnum =
        match static_elided with
        | Some (r_int, r_tnum) ->
            ( string_of_int r_int.Kflex_kie.Report.elided,
              string_of_int r_tnum.Kflex_kie.Report.elided )
        | None -> ("?", "?")
      in
      pf "  %-12s %10.1f %12.1f %12.1f %9.1f%% %8s %9s@."
        (Kflex_apps.Datastructs.name kind)
        kmod kflex noel
        (100. *. (noel -. kflex) /. (noel -. kmod +. 1e-9))
        el_int el_tnum)
    [
      Kflex_apps.Datastructs.Hashmap; Kflex_apps.Datastructs.Rbtree;
      Kflex_apps.Datastructs.Skiplist; Kflex_apps.Datastructs.Countmin;
    ];
  pf "  ('saved' = share of instrumentation overhead removed by elision)@."

(* ---- Bechamel micro-benchmarks ----------------------------------------- *)

(* One Bechamel Test.make per experiment family: wall-clock cost of the
   representative inner operation (VM-executed data-structure ops and
   end-to-end requests), complementing the cost-model numbers above. *)
let bechamel () =
  hr "Bechamel micro-benchmarks (host wall-clock of VM-executed ops)";
  let open Bechamel in
  let hm = Kflex_apps.Datastructs.create Kflex_apps.Datastructs.Hashmap in
  ds_preload hm ~n:4096;
  let sk = Kflex_apps.Datastructs.create Kflex_apps.Datastructs.Skiplist in
  ds_preload sk ~n:4096;
  let mc = Kflex_apps.Memcached.create_kflex () in
  for rank = 0 to 1023 do
    ignore
      (Kflex_apps.Memcached.exec_kflex mc
         (Kflex_apps.Memcached.op_packet ~op:Kflex_apps.Memcached.Set ~rank))
  done;
  let rd = Kflex_apps.Redis.create () in
  let counter = ref 0 in
  let tests =
    [
      (* Figures 2/3/7: one Memcached GET through the full pipeline *)
      Test.make ~name:"fig2_memcached_get"
        (Staged.stage (fun () ->
             incr counter;
             ignore
               (Kflex_apps.Memcached.exec_kflex mc
                  (Kflex_apps.Memcached.op_packet ~op:Kflex_apps.Memcached.Get
                     ~rank:(!counter land 1023)))));
      (* Figures 4/6: one Redis ZADD *)
      Test.make ~name:"fig4_redis_zadd"
        (Staged.stage (fun () ->
             incr counter;
             ignore
               (Kflex_apps.Redis.exec rd
                  (Kflex_apps.Redis.op_packet
                     ~op:
                       (Kflex_apps.Redis.Zadd
                          (Int64.of_int !counter, Int64.of_int !counter))
                     ~rank:1))));
      (* Figure 5 / Table 3: hashmap + skiplist lookups *)
      Test.make ~name:"fig5_hashmap_lookup"
        (Staged.stage (fun () ->
             incr counter;
             ignore
               (Kflex_apps.Datastructs.lookup hm
                  ~key:(Int64.of_int (!counter land 4095)))));
      Test.make ~name:"fig5_skiplist_lookup"
        (Staged.stage (fun () ->
             incr counter;
             ignore
               (Kflex_apps.Datastructs.lookup sk
                  ~key:(Int64.of_int (!counter land 4095)))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> pf "  %-28s %12.0f ns/op@." name est
          | _ -> pf "  %-28s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------------ *)

let all () =
  table1 ();
  fig2 ();
  fig3 ();
  fig4 ();
  fig5 ();
  fig6 ();
  fig7 ();
  table3 ();
  ablation ();
  bechamel ()

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match which with
  | "table1" -> table1 ()
  | "fig2" -> fig2 ()
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "fig5" -> fig5 ()
  | "fig6" -> fig6 ()
  | "fig7" -> fig7 ()
  | "table3" -> table3 ()
  | "ablation" -> ablation ()
  | "bechamel" -> bechamel ()
  | "jit" ->
      jit_bench
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke")
  | "engine" ->
      engine_bench
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke")
  | "serve" ->
      serve_bench
        ~smoke:(Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke")
  | "all" -> all ()
  | other ->
      pf
        "unknown experiment %s (use \
         table1|fig2|fig3|fig4|fig5|fig6|fig7|table3|ablation|bechamel|jit|engine|serve|all)@."
        other;
      exit 1
