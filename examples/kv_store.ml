(* Listing 1 of the paper: a key-value store backed by a linked list defined
   entirely inside the extension, serving update/delete/insert requests at
   the XDP hook — with a spin lock, socket lookups, dynamic allocation and
   an unbounded traversal loop, none of which plain eBPF can express.

   Run with:  dune exec examples/kv_store.exe *)

open Kflex_runtime
open Kflex_kernel

let source = {|
struct elem {
  key: u64;
  value: u64;
  next: ptr<elem>;
  prev: ptr<elem>;
}

global head: ptr<elem>;
global lock: u64;

// request: u64 key @0, u8 op @8 (0=update, 1=delete, 2=insert), u64 value @9
fn prog(c: ctx) -> u64 {
  var key: u64 = pkt_read_u64(c, 0);
  var op: u64 = pkt_read_u8(c, 8);

  var tup: bytes[16];
  st16(&tup, 0, 11211);

  var h: u64 = kflex_spin_lock(&lock);

  if (op == 2) {                        // insert at head
    var n: ptr<elem> = new elem;
    if (n == null) { kflex_spin_unlock(h); return 1; }
    n.key = key;
    n.value = pkt_read_u64(c, 9);
    n.next = head;
    if (head != null) { head.prev = n; }
    head = n;
    kflex_spin_unlock(h);
    return 1;
  }

  var e: ptr<elem> = head;
  while (e != null) {                   // unbounded traversal (C1 point)
    if (e.key != key) { e = e.next; continue; }
    // only handle packets for existing UDP sockets (Listing 1, line 33)
    var sk: u64 = bpf_sk_lookup_udp(c, &tup, 16, 0, 0);
    if (sk == 0) { break; }
    if (op == 0) {
      e.value = pkt_read_u64(c, 9);     // update
    } else {
      if (e.prev != null) { e.prev.next = e.next; } else { head = e.next; }
      if (e.next != null) { e.next.prev = e.prev; }
      free e;                           // delete
    }
    bpf_sk_release(sk);
    break;
  }

  kflex_spin_unlock(h);
  return 1;                             // XDP_DROP (consumed)
}
|}

let mk_pkt ~key ~op ~value =
  let b = Bytes.make 32 '\000' in
  Bytes.set_int64_le b 0 key;
  Bytes.set b 8 (Char.chr op);
  Bytes.set_int64_le b 9 value;
  Packet.make ~proto:Packet.Udp ~src_port:5555 ~dst_port:11211 b

let () =
  let compiled = Kflex_eclang.Compile.compile_string ~name:"listing1" source in
  let kernel = Helpers.create () in
  Socket.listen (Helpers.sockets kernel) ~proto:Packet.Udp ~port:11211;
  let heap = Heap.create ~size:(Int64.shift_left 1L 24) () in
  let loaded =
    match
      Kflex.load ~kernel ~heap
        ~globals_size:compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
        ~hook:Hook.Xdp compiled.Kflex_eclang.Compile.prog
    with
    | Ok l -> l
    | Error e ->
        Format.kasprintf failwith "verifier: %a" Kflex_verifier.Verify.pp_error e
  in
  Format.printf "loaded; %a@." Kflex_kie.Report.pp
    loaded.Kflex.kie.Kflex_kie.Instrument.report;
  let run what pkt =
    let stats = Vm.fresh_stats () in
    match Kflex.run_packet loaded ~stats pkt with
    | Vm.Finished _ -> Format.printf "%-24s (%d insns)@." what stats.Vm.insns
    | Vm.Cancelled _ -> Format.printf "%-24s CANCELLED@." what
  in
  run "insert 7 -> 42" (mk_pkt ~key:7L ~op:2 ~value:42L);
  run "insert 9 -> 43" (mk_pkt ~key:9L ~op:2 ~value:43L);
  run "update 7 -> 100" (mk_pkt ~key:7L ~op:0 ~value:100L);
  run "delete 9" (mk_pkt ~key:9L ~op:1 ~value:0L);
  (* read the surviving entry from the host side *)
  let head_off = Kflex_eclang.Compile.global_offset compiled "head" in
  let head = Heap.read_off heap ~width:8 head_off in
  let off = Option.get (Heap.offset_of_addr heap head) in
  let voff, _ = Kflex_eclang.Compile.field_offset compiled ~struct_:"elem" "value" in
  Format.printf "store now holds: key=%Ld value=%Ld@."
    (Heap.read_off heap ~width:8 off)
    (Heap.read_off heap ~width:8 (Int64.add off (Int64.of_int voff)));
  Format.printf "socket references outstanding: %d (always 0)@."
    (Socket.total_refs (Helpers.sockets kernel))
