(* §4.1: "As a demonstration of KFlex's flexibility, we implement the
   kflex_malloc() and kflex_free() functions as KFlex extensions" — the
   allocator's fast path is itself extension code managing free lists in
   the extension heap.

   This example builds a size-class free-list allocator entirely in eclang:
   a slab is carved by a bump pointer, freed blocks go to per-class free
   lists, and allocation is LIFO reuse. The host drives alloc/free requests
   and cross-checks the extension's bookkeeping.

   Run with:  dune exec examples/ext_allocator.exe *)

open Kflex_runtime

let source = {|
// free-list allocator managed by the extension itself
// classes: 32, 64, 128, 256 bytes
global freelist: [u64; 4];     // head of each class's free list
global bump: u64;              // next never-used heap offset
global slab_end: u64;
global live: u64;              // live block count (bookkeeping)

fn class_of(size: u64) -> u64 {
  if (size <= 32) { return 0; }
  if (size <= 64) { return 1; }
  if (size <= 128) { return 2; }
  return 3;
}

fn class_bytes(cls: u64) -> u64 {
  if (cls == 0) { return 32; }
  if (cls == 1) { return 64; }
  if (cls == 2) { return 128; }
  return 256;
}

fn ext_alloc(size: u64) -> u64 {
  if (size > 256) { return 0; }
  var cls: u64 = class_of(size);
  var head: u64 = freelist[cls];
  if (head != 0) {
    // pop: the first word of a free block links to the next
    freelist[cls] = ld64(head, 0);
    st64(head, 0, 0);
    live = live + 1;
    return head;
  }
  // slow path: carve from the bump region
  if (bump == 0) {
    bump = kflex_heap_base() + 4096;       // slab after the globals page
    slab_end = bump + 65536;
  }
  var nbytes: u64 = class_bytes(cls);
  if (bump + nbytes > slab_end) { return 0; }
  var blk: u64 = bump;
  bump = bump + nbytes;
  live = live + 1;
  return blk;
}

fn ext_free(p: u64, size: u64) -> u64 {
  if (p == 0) { return 0; }
  var cls: u64 = class_of(size);
  st64(p, 0, freelist[cls]);
  freelist[cls] = p;
  live = live - 1;
  return 1;
}

// request: u8 op @0 (0=alloc,1=free), u64 size @1, u64 ptr @9
// reply: result in r0
fn prog(c: ctx) -> u64 {
  var op: u64 = pkt_read_u8(c, 0);
  if (op == 0) { return ext_alloc(pkt_read_u64(c, 1)); }
  return ext_free(pkt_read_u64(c, 9), pkt_read_u64(c, 1));
}
|}

let () =
  let compiled = Kflex_eclang.Compile.compile_string ~name:"ext_alloc" source in
  let kernel = Kflex_kernel.Helpers.create () in
  let heap = Heap.create ~size:(Int64.shift_left 1L 20) () in
  (* the slab region the extension carves from must be backed *)
  Heap.populate heap ~off:4096L ~len:65536L;
  let loaded =
    match
      Kflex.load ~kernel ~heap
        ~globals_size:compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
        ~hook:Kflex_kernel.Hook.Xdp compiled.Kflex_eclang.Compile.prog
    with
    | Ok l -> l
    | Error e ->
        Format.kasprintf failwith "verifier: %a" Kflex_verifier.Verify.pp_error e
  in
  Format.printf "extension allocator loaded: %a@." Kflex_kie.Report.pp
    loaded.Kflex.kie.Kflex_kie.Instrument.report;
  let request ~op ~size ~ptr =
    let b = Bytes.make 17 '\000' in
    Bytes.set b 0 (Char.chr op);
    Bytes.set_int64_le b 1 size;
    Bytes.set_int64_le b 9 ptr;
    let pkt =
      Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp ~src_port:1
        ~dst_port:2 b
    in
    match Kflex.run_packet loaded pkt with
    | Vm.Finished v -> v
    | Vm.Cancelled _ -> failwith "cancelled"
  in
  let alloc size = request ~op:0 ~size ~ptr:0L in
  let free ptr size = ignore (request ~op:1 ~size ~ptr) in
  (* exercise it: allocate, free, observe LIFO reuse *)
  let a = alloc 48L in
  let b = alloc 48L in
  Format.printf "alloc 48 -> 0x%Lx, 0x%Lx (distinct: %b)@." a b (a <> b);
  free a 48L;
  let c = alloc 40L in
  Format.printf "freed the first; alloc 40 -> 0x%Lx (LIFO reuse: %b)@." c (c = a);
  (* slam it: many allocations across classes, then free everything *)
  let blocks = ref [] in
  (try
     for i = 1 to 10_000 do
       let size = Int64.of_int (8 + (i mod 240)) in
       let p = alloc size in
       if p = 0L then raise Exit;
       blocks := (p, size) :: !blocks
     done
   with Exit -> ());
  Format.printf "allocated %d blocks before slab exhaustion@."
    (List.length !blocks);
  List.iter (fun (p, size) -> free p size) !blocks;
  let live_off = Kflex_eclang.Compile.global_offset compiled "live" in
  (* b and c from the warm-up are still outstanding *)
  Format.printf "extension's live counter after the churn (expect 2): %Ld@."
    (Heap.read_off heap ~width:8 live_off);
  (* everything is reusable again *)
  let d = alloc 200L in
  Format.printf "post-churn alloc 200 -> 0x%Lx (non-null: %b)@." d (d <> 0L)
