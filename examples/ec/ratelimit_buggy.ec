// The rate limiter with the classic critical-section bug: the early-return
// drop path forgets bpf_map_unlock, so the bucket stays locked forever and
// every later packet on the same class stalls. The verifier's lifecycle
// pass rejects this at load time (`kflexc lint` demonstrates); the paper's
// point is that the kernel never has to trust the extension to be correct.

fn prog(c: ctx) -> u64 {
  var kbuf: bytes[8];
  var vbuf: bytes[8];
  st64(&kbuf, 0, pkt_read_u16(c, 0) & 63);

  var h: u64 = bpf_map_lock(3, &kbuf);
  if (h == 0) { return 2; }

  var tokens: u64 = 8;
  if (bpf_map_lookup(3, &kbuf, &vbuf) == 1) { tokens = ld64(&vbuf, 0); }

  if (tokens == 0) {
    return 1;                        // BUG: returns with the lock held
  }

  st64(&vbuf, 0, tokens - 1);
  bpf_map_update(3, &kbuf, &vbuf);
  bpf_map_unlock(h);
  return 2;
}
