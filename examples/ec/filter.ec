// A standalone eclang extension for the kflexc CLI:
// drops packets whose first payload word exceeds a per-port budget.
global budget: [u64; 1024];

fn prog(c: ctx) -> u64 {
  var port: u64 = pkt_read_u16(c, 0) & 1023;
  var cost: u64 = pkt_read_u32(c, 2);
  budget[port] = budget[port] + cost;
  if (budget[port] > 10000) { return 1; }  // XDP_DROP
  return 2;                                // XDP_PASS
}
