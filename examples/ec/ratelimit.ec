// Token-bucket rate limiter over a spin-locked shared map value (fd 3).
// Each source-port class owns a bucket; the whole read-modify-write runs
// inside the bpf_map_lock critical section, so concurrent shards never
// lose a token. The serve front end registers the engine-shared spinlock
// map at fd 3 (Engine.share_map); a full bucket table fails open.

fn prog(c: ctx) -> u64 {
  var kbuf: bytes[8];
  var vbuf: bytes[8];
  st64(&kbuf, 0, pkt_read_u16(c, 0) & 63);

  var h: u64 = bpf_map_lock(3, &kbuf);
  if (h == 0) { return 2; }          // bucket table full: fail open

  var tokens: u64 = 8;               // a fresh bucket starts full
  if (bpf_map_lookup(3, &kbuf, &vbuf) == 1) { tokens = ld64(&vbuf, 0); }

  if (tokens == 0) {
    bpf_map_unlock(h);
    return 1;                        // XDP_DROP: out of tokens
  }

  st64(&vbuf, 0, tokens - 1);
  bpf_map_update(3, &kbuf, &vbuf);
  bpf_map_unlock(h);
  return 2;                          // XDP_PASS
}
