// A deliberately buggy flow-cache entry allocator, kept as the lint
// demonstration: `kflexc lint` reports a missing null check on the
// allocation, a conditional leak on the early-drop path, and the verdicts
// below make it a useful chain partner. The SFI guards make every one of
// these *safe* to load — the lifecycle pass exists to tell you they are
// still wrong.
struct entry { key: u64; hits: u64; }

fn prog(c: ctx) -> u64 {
  var e: ptr<entry> = new entry;
  e.key = pkt_read_u64(c, 0);      // null-deref: `new` can fail, no check
  e.hits = 1;
  if (e.key == 7) { return 1; }    // leak: `e` is never freed on this path
  free e;
  return 2;                        // XDP_PASS
}
