(* Quickstart: write a kernel extension in eclang, load it through the full
   KFlex pipeline (verify -> instrument -> attach), and deliver packets.

   Run with:  dune exec examples/quickstart.exe *)

let source = {|
// A tiny per-port packet counter with a histogram in the extension heap —
// extension-defined state that plain eBPF would force into a fixed map.
global counts: [u64; 65536];
global total: u64;

fn prog(c: ctx) -> u64 {
  var port: u64 = pkt_read_u16(c, 0);  // demo: port echoed in the payload
  counts[port] = counts[port] + 1;
  total = total + 1;
  if (counts[port] > 3) {
    return 1;                          // XDP_DROP: rate-limit chatty ports
  }
  return 2;                            // XDP_PASS
}
|}

let () =
  (* 1. compile eclang to KFlex bytecode *)
  let compiled = Kflex_eclang.Compile.compile_string ~name:"quickstart" source in
  Format.printf "compiled to %d instructions@."
    (Kflex_bpf.Prog.length compiled.Kflex_eclang.Compile.prog);

  (* 2. create the kernel side and an extension heap, then load: this runs
        the verifier and the Kie instrumentation engine *)
  let kernel = Kflex_kernel.Helpers.create () in
  let heap = Kflex_runtime.Heap.create ~size:(Int64.shift_left 1L 20) () in
  let loaded =
    match
      Kflex.load ~kernel ~heap
        ~globals_size:compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
        ~hook:Kflex_kernel.Hook.Xdp compiled.Kflex_eclang.Compile.prog
    with
    | Ok l -> l
    | Error e ->
        Format.kasprintf failwith "rejected by the verifier: %a"
          Kflex_verifier.Verify.pp_error e
  in
  Format.printf "instrumentation: %a@." Kflex_kie.Report.pp
    loaded.Kflex.kie.Kflex_kie.Instrument.report;

  (* 3. deliver packets *)
  let send port =
    let payload = Bytes.make 4 '\000' in
    Bytes.set_uint16_le payload 0 port;
    let pkt =
      Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp ~src_port:9999
        ~dst_port:80 payload
    in
    match Kflex.run_packet loaded pkt with
    | Kflex_runtime.Vm.Finished v -> v
    | Kflex_runtime.Vm.Cancelled _ -> failwith "cancelled"
  in
  for i = 1 to 6 do
    let action = send 443 in
    Format.printf "packet %d to port 443 -> %s@." i
      (if action = 1L then "DROP" else "PASS")
  done;
  Format.printf "packet to port 80 -> %s@."
    (if send 80 = 2L then "PASS" else "DROP");

  (* 4. inspect extension state from the host *)
  let total_off = Kflex_eclang.Compile.global_offset compiled "total" in
  Format.printf "extension counted %Ld packets total@."
    (Kflex_runtime.Heap.read_off heap ~width:8 total_off)
