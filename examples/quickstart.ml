(* Quickstart: write kernel extensions in eclang, admit them into the
   multi-tenant engine (verify -> instrument -> attach), and deliver
   packets through the hook's chain.

   Run with:  dune exec examples/quickstart.exe *)

module Engine = Kflex_engine.Engine

let counter_source = {|
// A tiny per-port packet counter with a histogram in the extension heap —
// extension-defined state that plain eBPF would force into a fixed map.
global counts: [u64; 65536];
global total: u64;

fn prog(c: ctx) -> u64 {
  var port: u64 = pkt_read_u16(c, 0);  // demo: port echoed in the payload
  counts[port] = counts[port] + 1;
  total = total + 1;
  if (counts[port] > 3) {
    return 1;                          // XDP_DROP: rate-limit chatty ports
  }
  return 2;                            // XDP_PASS
}
|}

let audit_source = {|
// A second tenant on the same hook, with its own private heap. The chain
// reaches it only while earlier verdicts are XDP_PASS, so it counts the
// packets the rate limiter let through.
global seen: u64;

fn prog(c: ctx) -> u64 {
  seen = seen + 1;
  return 2;
}
|}

let () =
  (* 1. compile eclang to KFlex bytecode *)
  let counter =
    Kflex_eclang.Compile.compile_string ~name:"counter" counter_source
  in
  let audit = Kflex_eclang.Compile.compile_string ~name:"audit" audit_source in
  Format.printf "compiled to %d + %d instructions@."
    (Kflex_bpf.Prog.length counter.Kflex_eclang.Compile.prog)
    (Kflex_bpf.Prog.length audit.Kflex_eclang.Compile.prog);

  (* 2. create an engine and attach both tenants to the XDP hook. Each
        attach runs the admission pipeline — verifier, Kie instrumentation,
        (optionally) compilation through the shared program cache — once,
        then instantiates the program with a private heap on every shard.
        One shard here; raise ~shards for per-CPU scaling. *)
  let eng = Engine.create ~shards:1 () in
  let attach name (c : Kflex_eclang.Compile.compiled) =
    match
      Engine.attach eng ~name
        ~globals_size:c.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
        ~heap_size:(Int64.shift_left 1L 20)
        ~hook:Kflex_kernel.Hook.Xdp c.Kflex_eclang.Compile.prog
    with
    | Ok h -> h
    | Error e ->
        Format.kasprintf failwith "%s rejected by the verifier: %a" name
          Kflex_verifier.Verify.pp_error e
  in
  let h_counter = attach "counter" counter in
  let h_audit = attach "audit" audit in
  let report (l : Kflex.loaded) =
    Format.printf "instrumentation: %a@." Kflex_kie.Report.pp
      l.Kflex.kie.Kflex_kie.Instrument.report
  in
  report (Engine.instance h_counter ~shard:0);

  (* 3. deliver packets: the chain composes verdicts — the first non-PASS
        wins and later tenants do not run *)
  let send port =
    let payload = Bytes.make 4 '\000' in
    Bytes.set_uint16_le payload 0 port;
    let pkt =
      Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp ~src_port:9999
        ~dst_port:80 payload
    in
    let r = Engine.run_packet eng pkt in
    (r.Engine.verdict, r.Engine.executed)
  in
  for i = 1 to 6 do
    let action, ran = send 443 in
    Format.printf "packet %d to port 443 -> %s (%d of 2 tenants ran)@." i
      (if action = 1L then "DROP" else "PASS")
      ran
  done;
  Format.printf "packet to port 80 -> %s@."
    (if fst (send 80) = 2L then "PASS" else "DROP");

  (* 4. inspect extension state from the host, per tenant and shard *)
  let heap_of h =
    match (Engine.instance h ~shard:0).Kflex.heap with
    | Some heap -> heap
    | None -> assert false
  in
  let total_off = Kflex_eclang.Compile.global_offset counter "total" in
  let seen_off = Kflex_eclang.Compile.global_offset audit "seen" in
  Format.printf "counter saw %Ld packets; audit saw %Ld get past it@."
    (Kflex_runtime.Heap.read_off (heap_of h_counter) ~width:8 total_off)
    (Kflex_runtime.Heap.read_off (heap_of h_audit) ~width:8 seen_off)
