(* Security hooks and default-deny cancellation (§4.3).

   KFlex picks the cancellation fallback per hook: network hooks pass
   packets by default, but a security (LSM-style) extension that gets
   cancelled must DENY — a runaway security filter must fail closed. This
   example loads an allow-list filter at the LSM hook, shows it allowing
   and denying operations, then breaks its state so it runs away and
   demonstrates that cancellation denies.

   Run with:  dune exec examples/lsm_guard.exe *)

open Kflex_runtime
open Kflex_kernel

let source = {|
// allow-list of "subject ids" kept in an extension-defined list
struct rule { subject: u64; next: ptr<rule>; }
global rules: ptr<rule>;

// ctx layout is reused: we read the subject id via the packet helpers
fn prog(c: ctx) -> u64 {
  var subject: u64 = pkt_read_u64(c, 0);
  if (subject == 0) {            // control plane: install a rule
    var r: ptr<rule> = new rule;
    if (r == null) { return 0 - 1; }
    r.subject = pkt_read_u64(c, 8);
    r.next = rules;
    rules = r;
    return 0;
  }
  var r: ptr<rule> = rules;
  while (r != null) {
    if (r.subject == subject) { return 0; }   // allow
    r = r.next;
  }
  return 0 - 1;                  // deny
}
|}

let request ~subject ~arg =
  let b = Bytes.make 16 '\000' in
  Bytes.set_int64_le b 0 subject;
  Bytes.set_int64_le b 8 arg;
  Packet.make ~proto:Packet.Udp ~src_port:0 ~dst_port:0 b

let () =
  let compiled = Kflex_eclang.Compile.compile_string ~name:"lsm_guard" source in
  let kernel = Helpers.create () in
  let heap = Heap.create ~size:(Int64.shift_left 1L 20) () in
  let loaded =
    match
      Kflex.load ~kernel ~heap ~quantum:100_000
        ~globals_size:compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
        ~hook:Hook.Lsm compiled.Kflex_eclang.Compile.prog
    with
    | Ok l -> l
    | Error e ->
        Format.kasprintf failwith "verifier: %a" Kflex_verifier.Verify.pp_error e
  in
  let check ~subject ~arg =
    match Kflex.run_packet loaded (request ~subject ~arg) with
    | Vm.Finished v -> (v, false)
    | Vm.Cancelled { ret; _ } -> (ret, true)
  in
  (* install rules for subjects 1001 and 1002 *)
  ignore (check ~subject:0L ~arg:1001L);
  ignore (check ~subject:0L ~arg:1002L);
  List.iter
    (fun s ->
      let v, _ = check ~subject:s ~arg:0L in
      Format.printf "subject %4Ld -> %s@." s
        (if v = 0L then "ALLOW" else "DENY"))
    [ 1001L; 1002L; 9999L ];
  (* sabotage: make the rule list circular, so the filter runs away *)
  let rules_off = Kflex_eclang.Compile.global_offset compiled "rules" in
  let head = Heap.read_off heap ~width:8 rules_off in
  let off = Option.get (Heap.offset_of_addr heap head) in
  let noff, _ = Kflex_eclang.Compile.field_offset compiled ~struct_:"rule" "next" in
  Heap.write_off heap ~width:8 (Int64.add off (Int64.of_int noff)) head;
  let v, cancelled = check ~subject:9999L ~arg:0L in
  Format.printf
    "subject 9999 with a corrupted (circular) rule list -> %s%s@."
    (if v = 0L then "ALLOW" else "DENY")
    (if cancelled then "  (by cancellation: the security hook fails closed)"
     else "");
  assert (v = -1L && cancelled)
