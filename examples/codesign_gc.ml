(* Co-design (§3.4, §5.3): the Memcached fast path runs as a KFlex extension
   against a heap shared with the application; a user-space GC "thread"
   walks the same hash table through the user mapping — following
   translate-on-store pointers directly, no syscalls — and reclaims expired
   entries under the shared spin lock.

   Run with:  dune exec examples/codesign_gc.exe *)

module M = Kflex_apps.Memcached

let () =
  let t = Kflex_apps.Codesign.create () in

  (* kernel fast path: populate the cache *)
  for rank = 0 to 999 do
    ignore (Kflex_apps.Codesign.exec t (M.op_packet ~op:M.Set ~rank))
  done;
  Format.printf "kernel fast path inserted 1000 entries into the shared heap@.";

  (* user space reads the same state directly *)
  (match Kflex_apps.Codesign.gc_pass t ~now:0.0 with
  | Some (seen, _) ->
      Format.printf "user-space GC walked the table: %d entries visible@." seen
  | None -> Format.printf "GC found the lock busy@.");

  (* a GC cycle that expires ~half the entries (odd first value word) *)
  (match
     Kflex_apps.Codesign.gc_pass ~expired:(fun v0 -> Int64.rem v0 2L = 1L) t
       ~now:0.0
   with
  | Some (seen, freed) ->
      Format.printf "GC cycle: saw %d entries, reclaimed %d@." seen freed
  | None -> Format.printf "GC found the lock busy@.");

  (* the kernel immediately observes the reclaimed entries as misses *)
  let hits = ref 0 in
  for rank = 0 to 999 do
    let pkt = M.op_packet ~op:M.Get ~rank in
    ignore (Kflex_apps.Codesign.exec t pkt);
    if Kflex_kernel.Packet.read pkt ~width:1 65 = 1L then incr hits
  done;
  Format.printf "kernel GETs after GC: %d hits of 1000@." !hits;

  (* lock-holder preemption protocol: while user space holds the lock, the
     extension stalls and is cancelled rather than deadlocking the kernel *)
  let mc = Kflex_apps.Codesign.memcached t in
  let umap = Kflex_runtime.Usermap.attach mc.M.heap in
  let lock_off = Kflex_eclang.Compile.global_offset mc.M.compiled "lock" in
  let slice = Kflex_runtime.Timeslice.create () in
  assert (Kflex_runtime.Usermap.try_lock umap ~off:lock_off ~slice ~now:0.0);
  Format.printf
    "user thread holds the lock (time-slice extension armed: %.0f us)@."
    (Kflex_runtime.Timeslice.slice_ns /. 1000.);
  (match
     Kflex_runtime.Vm.exec mc.M.loaded.Kflex.ext
       ~ctx:(Kflex_kernel.Hook.build_ctx (M.op_packet ~op:M.Get ~rank:0))
       ()
   with
  | Kflex_runtime.Vm.Cancelled { reason = Kflex_runtime.Vm.Lock_stall; _ } ->
      Format.printf "extension stalled on the user-held lock and was cancelled@."
  | _ -> Format.printf "unexpected outcome@.");
  Kflex_runtime.Usermap.unlock umap ~off:lock_off ~slice;
  Format.printf "user thread released the lock; nesting=%d@."
    (Kflex_runtime.Timeslice.nesting slice)
