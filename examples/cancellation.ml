(* Extension cancellations (§3.3): a buggy extension walks a circular list
   forever while holding a spin lock and a socket reference. The watchdog
   expires its quantum; at the next cancellation point the runtime unwinds
   through the statically computed object table, releasing the lock and the
   socket, and returns the hook's default code. The kernel is back in a
   quiescent state; only the extension died.

   Run with:  dune exec examples/cancellation.exe *)

open Kflex_runtime
open Kflex_kernel

let source = {|
struct node { v: u64; next: ptr<node>; }
global ring: ptr<node>;
global lock: u64;

fn prog(c: ctx) -> u64 {
  // build a one-node cycle: the traversal below never terminates
  if (ring == null) {
    var n: ptr<node> = new node;
    if (n == null) { return 2; }
    n.next = n;
    ring = n;
  }
  var tup: bytes[16];
  st16(&tup, 0, 7777);
  var h: u64 = kflex_spin_lock(&lock);
  var sk: u64 = bpf_sk_lookup_udp(c, &tup, 16, 0, 0);
  if (sk == 0) { kflex_spin_unlock(h); return 2; }
  var e: ptr<node> = ring;
  var sum: u64 = 0;
  while (e != null) {          // C1 cancellation point on this back edge
    sum = sum + e.v;
    e = e.next;                // ... forever
  }
  bpf_sk_release(sk);
  kflex_spin_unlock(h);
  return sum;
}
|}

let () =
  let compiled = Kflex_eclang.Compile.compile_string ~name:"runaway" source in
  let kernel = Helpers.create () in
  Socket.listen (Helpers.sockets kernel) ~proto:Packet.Udp ~port:7777;
  let heap = Heap.create ~size:(Int64.shift_left 1L 20) () in
  let loaded =
    match
      Kflex.load ~kernel ~heap ~quantum:100_000
        ~globals_size:compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
        ~hook:Hook.Xdp compiled.Kflex_eclang.Compile.prog
    with
    | Ok l -> l
    | Error e ->
        Format.kasprintf failwith "verifier: %a" Kflex_verifier.Verify.pp_error e
  in
  let pkt = Packet.make ~proto:Packet.Udp ~src_port:1 ~dst_port:7777 (Bytes.make 8 '\000') in
  let stats = Vm.fresh_stats () in
  (match Kflex.run_packet loaded ~stats pkt with
  | Vm.Finished v -> Format.printf "finished?! ret=%Ld@." v
  | Vm.Cancelled { orig_pc; reason; released; ret; ledger_leaked } ->
      Format.printf "extension CANCELLED after %d instructions@." stats.Vm.insns;
      Format.printf "  at original pc %d, reason: %s@." orig_pc
        (match reason with
        | Vm.Quantum_expired -> "watchdog quantum expired"
        | Vm.Page_fault -> "heap page fault"
        | _ -> "other");
      List.iter
        (fun (klass, dtor) ->
          Format.printf "  released %-12s via %s@." klass dtor)
        released;
      Format.printf "  returned default code %Ld (XDP_PASS)@." ret;
      Format.printf "  objects the static table missed: %d@." ledger_leaked);
  Format.printf "kernel state after cancellation:@.";
  Format.printf "  socket refs: %d (quiescent)@."
    (Socket.total_refs (Helpers.sockets kernel));
  Format.printf "  lock word:   %Ld (free)@."
    (Heap.read_off heap ~width:8
       (Kflex_eclang.Compile.global_offset compiled "lock"));
  Format.printf "  heap survives for user space: ring=%Ld bytes populated@."
    (Heap.populated_bytes heap)
