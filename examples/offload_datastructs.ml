(* Offloading extension-defined data structures (§5.2): load each of the
   five structures of Figure 5, run a few thousand operations through the
   full pipeline, and show the per-op cost of KFlex's runtime checks
   against the unsafe kernel-module baseline, plus the Table 3 guard
   accounting.

   Run with:  dune exec examples/offload_datastructs.exe *)

module D = Kflex_apps.Datastructs

let () =
  Format.printf "%-12s %10s %10s %10s %26s@." "structure" "KMod" "KFlex"
    "overhead" "guards (sites/elided)";
  List.iter
    (fun kind ->
      let cost mode =
        let inst = D.create ~mode kind in
        for i = 0 to 2047 do
          ignore (D.update inst ~key:(Int64.of_int i) ~value:(Int64.of_int i))
        done;
        let total = ref 0 in
        for i = 0 to 511 do
          let _, c = D.lookup inst ~key:(Int64.of_int (i * 4)) in
          total := !total + c
        done;
        (float_of_int !total /. 512., inst)
      in
      let kmod, _ = cost D.M_kmod in
      let kflex, inst = cost D.M_kflex in
      let report =
        (D.loaded inst).Kflex.kie.Kflex_kie.Instrument.report
      in
      Format.printf "%-12s %9.0fc %9.0fc %9.1f%% %15d / %d@." (D.name kind)
        kmod kflex
        (100. *. (kflex -. kmod) /. kmod)
        report.Kflex_kie.Report.counted_sites report.Kflex_kie.Report.elided)
    D.all;
  Format.printf
    "@.(costs in VM cost units per lookup over 2048 preloaded keys)@."
