(* kflexc — the KFlex extension toolchain CLI.

   Subcommands:
     compile FILE.ec [-o OUT.kfx]   compile eclang to a KFlex bytecode blob
     disasm  FILE.kfx               disassemble a bytecode blob
     verify  FILE.ec|FILE.kfx       run the verifier and print the analysis
     lint    FILE.ec|FILE.kfx       report dead code, dead stores, redundant guards
     report  FILE.ec [--perf-mode]  instrument and print the guard report
     run     FILE.ec [--payload HEX] load and execute with one packet
     fuzz    --seed N --count K     differential soundness fuzzing campaign
     replay  FILE.kfxr              re-run a fuzz reproducer file
     serve   --attach FILE ...      drive a multi-tenant engine (or --selftest)
     chain   FILE...                run one packet through an ad-hoc chain *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_prog path =
  if Filename.check_suffix path ".kfx" then
    (Kflex_bpf.Encode.decode (read_file path), 0L)
  else
    let c = Kflex_eclang.Compile.compile_string ~name:(Filename.basename path) (read_file path) in
    (c.Kflex_eclang.Compile.prog, c.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size)

let handle_errors ?(code = 1) f =
  try f () with
  | Kflex_eclang.Compile.Error m ->
      Format.eprintf "compile error: %s@." m;
      exit code
  | Kflex_eclang.Parser.Error { line; msg } ->
      Format.eprintf "parse error (line %d): %s@." line msg;
      exit code
  | Kflex_eclang.Lexer.Error { line; msg } ->
      Format.eprintf "lex error (line %d): %s@." line msg;
      exit code
  | Kflex_bpf.Encode.Decode_error m ->
      Format.eprintf "decode error: %s@." m;
      exit code
  | Sys_error m ->
      Format.eprintf "%s@." m;
      exit code

let file_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let compile_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT")
  in
  let run file out =
    handle_errors (fun () ->
        let prog, globals = load_prog file in
        let out =
          match out with
          | Some o -> o
          | None -> Filename.remove_extension file ^ ".kfx"
        in
        let oc = open_out_bin out in
        output_string oc (Kflex_bpf.Encode.encode prog);
        close_out oc;
        Format.printf "%s: %d insns, %Ld bytes of globals -> %s@." file
          (Kflex_bpf.Prog.length prog) globals out)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile eclang to KFlex bytecode")
    Term.(const run $ file_arg $ out)

let disasm_cmd =
  let run file =
    handle_errors (fun () ->
        let prog, _ = load_prog file in
        Format.printf "%a@." Kflex_bpf.Prog.pp prog)
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a program") Term.(const run $ file_arg)

let heap_size_arg =
  Arg.(value & opt int 24 & info [ "heap-bits" ] ~docv:"N"
         ~doc:"Heap size as a power of two (default 24 = 16 MiB)")

let verify_cmd =
  let run file heap_bits =
    handle_errors (fun () ->
        let prog, _ = load_prog file in
        match
          Kflex_verifier.Verify.run ~mode:Kflex_verifier.Verify.Kflex
            ~contracts:Kflex.contracts ~ctx_size:Kflex_kernel.Hook.ctx_size
            ~heap_size:(Int64.shift_left 1L heap_bits) prog
        with
        | Error e ->
            Format.printf "REJECTED: %a@." Kflex_verifier.Verify.pp_error e;
            exit 1
        | Ok a ->
            Format.printf "OK: %d insns, %d heap accesses (%d elidable), %d \
                           unbounded loops, %d stack bytes@."
              a.Kflex_verifier.Verify.insn_count
              (List.length a.Kflex_verifier.Verify.heap_accesses)
              (List.length
                 (List.filter
                    (fun (x : Kflex_verifier.Verify.heap_access) ->
                      x.Kflex_verifier.Verify.elidable)
                    a.Kflex_verifier.Verify.heap_accesses))
              (List.length a.Kflex_verifier.Verify.unbounded)
              a.Kflex_verifier.Verify.stack_used)
  in
  Cmd.v (Cmd.info "verify" ~doc:"Verify kernel-interface compliance")
    Term.(const run $ file_arg $ heap_size_arg)

let lint_cmd =
  let files =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE"
           ~doc:"Programs to lint (.ec, .kfx, or .kfxr fuzz reproducers — a \
                 pair reproducer contributes both chain programs). With more \
                 than one program, they are additionally analysed as an XDP \
                 chain in argument order.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit machine-readable diagnostics: one JSON object per \
                 program (JSON lines), plus a final chain object when more \
                 than one program is given. See README for the schema.")
  in
  let run files json heap_bits =
    handle_errors ~code:2 (fun () ->
        (* Each input contributes one or two (name, prog, heap_size) units;
           a .kfxr reproducer carries its own heap geometry. *)
        let units =
          List.concat_map
            (fun file ->
              if Filename.check_suffix file ".kfxr" then begin
                let r = Kflex_fuzz.Corpus.read file in
                let hs =
                  r.Kflex_fuzz.Corpus.config.Kflex_fuzz.Oracle.heap_size
                in
                let base = Filename.basename file in
                match r.Kflex_fuzz.Corpus.prog2 with
                | None -> [ (base, r.Kflex_fuzz.Corpus.prog, hs) ]
                | Some p2 ->
                    [ (base, r.Kflex_fuzz.Corpus.prog, hs);
                      (base ^ "#2", p2, hs) ]
              end
              else
                let prog, _ = load_prog file in
                [ (Filename.basename file, prog,
                   Int64.shift_left 1L heap_bits) ])
            files
        in
        (* A rejected program is itself a lint result (the buggy variants
           in examples/ exist to demonstrate it): report it — structured
           under --json — and keep linting the remaining files. *)
        let rejected = ref [] in
        let analyses =
          List.filter_map
            (fun (name, prog, heap_size) ->
              match
                Kflex_verifier.Verify.run ~mode:Kflex_verifier.Verify.Kflex
                  ~contracts:Kflex.contracts
                  ~ctx_size:Kflex_kernel.Hook.ctx_size ~heap_size prog
              with
              | Error e ->
                  rejected := (name, e) :: !rejected;
                  None
              | Ok a -> Some (name, a))
            units
        in
        let rejected = List.rev !rejected in
        let per =
          List.map
            (fun (name, a) ->
              ( name,
                Kflex_verifier.Lint.run ~contracts:Kflex.contracts a,
                Kflex_verifier.Lifecycle.run ~contracts:Kflex.contracts a ))
            analyses
        in
        let multi = List.length units > 1 in
        (* the chain view needs every member admitted *)
        let chain =
          if multi && rejected = [] then
            Kflex_verifier.Lifecycle.run_chain ~contracts:Kflex.contracts
              ~pass_verdict:
                (Kflex_kernel.Hook.pass_verdict Kflex_kernel.Hook.Xdp)
              (List.map snd analyses)
          else []
        in
        if json then begin
          List.iter
            (fun (name, e) ->
              print_endline (Kflex_kie.Report.lint_rejected_json ~program:name e))
            rejected;
          List.iter
            (fun (name, diags, findings) ->
              print_endline
                (Kflex_kie.Report.lint_json ~program:name ~diags ~findings))
            per;
          if multi && rejected = [] then
            print_endline
              (Kflex_kie.Report.chain_json
                 ~programs:(List.map (fun (n, _, _) -> n) per)
                 ~findings:chain)
        end
        else begin
          List.iter
            (fun (name, e) ->
              Format.printf "%s: REJECTED: %a@." name
                Kflex_verifier.Verify.pp_error e)
            rejected;
          List.iter
            (fun (name, diags, findings) ->
              if multi then Format.printf "%s:@." name;
              Format.printf "%a@." Kflex_kie.Report.pp_lint diags;
              Format.printf "%a@." Kflex_kie.Report.pp_lifecycle findings)
            per;
          if multi && rejected = [] then begin
            if chain = [] then Format.printf "chain: clean@."
            else
              List.iter
                (fun (cf : Kflex_verifier.Lifecycle.chain_finding) ->
                  Format.printf "chain: #%d %a@."
                    cf.Kflex_verifier.Lifecycle.index
                    Kflex_verifier.Lifecycle.pp_finding
                    cf.Kflex_verifier.Lifecycle.finding)
                chain
          end
        end;
        let any =
          chain <> []
          || List.exists (fun (_, d, f) -> d <> [] || f <> []) per
        in
        exit (if rejected <> [] then 2 else if any then 1 else 0))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Report dead code, dead stores, provably-dead branches, redundant \
          guards, ignored helper results, and path-sensitive lifecycle \
          hazards (leaks, double-release, use-after-release, null derefs, \
          lock pairing/ordering, chain-unreachable programs). Exits 0 when \
          clean, 1 with findings, 2 on compile/verify failure.")
    Term.(const run $ files $ json $ heap_size_arg)

let access_note (a : Kflex_verifier.Verify.analysis) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (x : Kflex_verifier.Verify.heap_access) ->
      let what =
        if x.Kflex_verifier.Verify.formation then "formation"
        else if x.Kflex_verifier.Verify.elidable then "elidable"
        else "guarded"
      in
      Hashtbl.replace tbl x.Kflex_verifier.Verify.pc
        (Format.asprintf "%s %s w=%d eff=%a" what
           (if x.Kflex_verifier.Verify.is_store then "store" else "load")
           x.Kflex_verifier.Verify.width Kflex_verifier.Range.pp
           x.Kflex_verifier.Verify.eff))
    a.Kflex_verifier.Verify.heap_accesses;
  fun pc -> Hashtbl.find_opt tbl pc

let report_cmd =
  let pm = Arg.(value & flag & info [ "perf-mode" ] ~doc:"Performance mode") in
  let run file heap_bits pm =
    handle_errors (fun () ->
        let prog, _ = load_prog file in
        match
          Kflex_verifier.Verify.run ~mode:Kflex_verifier.Verify.Kflex
            ~contracts:Kflex.contracts ~ctx_size:Kflex_kernel.Hook.ctx_size
            ~heap_size:(Int64.shift_left 1L heap_bits) prog
        with
        | Error e ->
            Format.printf "REJECTED: %a@." Kflex_verifier.Verify.pp_error e;
            exit 1
        | Ok a ->
            let kie =
              Kflex_kie.Instrument.run
                ~options:{ Kflex_kie.Instrument.default_options with
                           Kflex_kie.Instrument.performance_mode = pm }
                a
            in
            Format.printf "%a@."
              (Kflex_bpf.Prog.pp_with_notes ~notes:(access_note a))
              prog;
            Format.printf "%a@." Kflex_kie.Report.pp
              kie.Kflex_kie.Instrument.report;
            let diags = Kflex_verifier.Lint.run ~contracts:Kflex.contracts a in
            Format.printf "%a@." Kflex_kie.Report.pp_lint diags;
            Format.printf "%a@." Kflex_kie.Report.pp_lifecycle
              (Kflex_verifier.Lifecycle.run ~contracts:Kflex.contracts a);
            Format.printf "instrumented: %d -> %d insns@."
              (Kflex_bpf.Prog.length prog)
              (Kflex_bpf.Prog.length kie.Kflex_kie.Instrument.prog))
  in
  Cmd.v (Cmd.info "report" ~doc:"Print the Kie instrumentation report")
    Term.(const run $ file_arg $ heap_size_arg $ pm)

let backend_arg =
  Arg.(value
       & opt (enum [ ("interp", `Interp); ("compiled", `Compiled) ]) `Interp
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Execution engine: $(b,interp) (fetch/decode interpreter) or \
                 $(b,compiled) (closure-compiled direct-threaded backend)")

let run_cmd =
  let payload =
    Arg.(value & opt string "" & info [ "payload" ] ~docv:"HEX"
           ~doc:"Packet payload as hex bytes")
  in
  let run file heap_bits payload backend =
    handle_errors (fun () ->
        let prog, globals =
          if Filename.check_suffix file ".kfx" then load_prog file
          else load_prog file
        in
        let kernel = Kflex_kernel.Helpers.create () in
        let heap =
          Kflex_runtime.Heap.create ~size:(Int64.shift_left 1L heap_bits) ()
        in
        match
          Kflex.load ~kernel ~heap ~globals_size:globals
            ~hook:Kflex_kernel.Hook.Xdp prog
        with
        | Error e ->
            Format.printf "REJECTED: %a@." Kflex_verifier.Verify.pp_error e;
            exit 1
        | Ok loaded -> (
            let backend_name, compile_note =
              match backend with
              | `Interp -> ("interp", "")
              | `Compiled ->
                  let t0 = Unix.gettimeofday () in
                  let jit =
                    Kflex_runtime.Vm.precompile loaded.Kflex.ext
                  in
                  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
                  ( "compiled",
                    Printf.sprintf ", compiled %d insns (%d fused) in %.3f ms"
                      (Kflex_runtime.Jit.insn_count jit)
                      (Kflex_runtime.Jit.fused_pairs jit)
                      ms )
            in
            let bytes =
              if payload = "" then Bytes.make 64 '\000'
              else begin
                let n = String.length payload / 2 in
                Bytes.init n (fun i ->
                    Char.chr (int_of_string ("0x" ^ String.sub payload (2 * i) 2)))
              end
            in
            let pkt =
              Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp
                ~src_port:1 ~dst_port:2 bytes
            in
            let stats = Kflex_runtime.Vm.fresh_stats () in
            match Kflex.run_packet loaded ~stats ~backend pkt with
            | Kflex_runtime.Vm.Finished v ->
                Format.printf "finished: ret=%Ld (%d insns, %d guards, %d \
                               checkpoints; backend=%s%s)@."
                  v stats.Kflex_runtime.Vm.insns stats.Kflex_runtime.Vm.guards
                  stats.Kflex_runtime.Vm.checkpoints backend_name compile_note
            | Kflex_runtime.Vm.Cancelled { orig_pc; released; ret; _ } ->
                Format.printf "cancelled at pc %d; released [%s]; ret=%Ld \
                               (backend=%s%s)@."
                  orig_pc
                  (String.concat "; " (List.map fst released))
                  ret backend_name compile_note))
  in
  Cmd.v (Cmd.info "run" ~doc:"Load and execute an extension once")
    Term.(const run $ file_arg $ heap_size_arg $ payload $ backend_arg)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"N"
           ~doc:"Master RNG seed; the whole campaign is deterministic in it")
  in
  let count =
    Arg.(value & opt int 1000 & info [ "count" ] ~docv:"K"
           ~doc:"Number of random programs to generate and check")
  in
  let out =
    Arg.(value & opt string "fuzz-out" & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory for shrunk reproducer files")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the summary") in
  let threaded_shared =
    Arg.(value & flag
         & info [ "shared-threaded" ]
             ~doc:
               "Escalate every shared-map linearizability pass to a 4-shard \
                threaded safety run (real cross-domain contention)")
  in
  let run seed count out quiet backend threaded_shared =
    let log = if quiet then fun _ -> () else fun l -> Format.printf "%s@." l in
    let s =
      Kflex_fuzz.Campaign.run ~out_dir:out ~log ~backend ~threaded_shared
        ~seed ~count ()
    in
    Format.printf "%a@." Kflex_fuzz.Campaign.pp_summary s;
    if s.Kflex_fuzz.Campaign.failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential soundness fuzzing: random extensions checked against \
          the abstract-containment, guard-elision, cancellation and \
          encode-roundtrip oracles (plus interpreter-vs-compiled equivalence \
          with --backend compiled, and shared-map linearizability on a \
          sharded engine). Exits 1 when any oracle fails, writing shrunk \
          reproducers to --out.")
    Term.(const run $ seed $ count $ out $ quiet $ backend_arg $ threaded_shared)

let replay_cmd =
  let run file backend =
    handle_errors (fun () ->
        let r = Kflex_fuzz.Corpus.read file in
        let v = Kflex_fuzz.Corpus.replay ~backend r in
        Format.printf "%s: %a@." file Kflex_fuzz.Oracle.pp_verdict v;
        match v with Kflex_fuzz.Oracle.Fail _ -> exit 1 | _ -> ())
  in
  Cmd.v (Cmd.info "replay" ~doc:"Re-run a fuzz reproducer (.kfxr) file")
    Term.(const run $ file_arg $ backend_arg)

(* ---- serve / chain: the multi-tenant engine ---------------------------- *)

module Engine = Kflex_engine.Engine

let attach_file eng ?quantum ~heap_bits file =
  let prog, globals = load_prog file in
  match
    Engine.attach eng ~name:(Filename.basename file) ~globals_size:globals
      ?quantum
      ~heap_size:(Int64.shift_left 1L heap_bits)
      ~hook:Kflex_kernel.Hook.Xdp prog
  with
  | Ok h -> h
  | Error e ->
      Format.eprintf "%s: REJECTED: %a@." file Kflex_verifier.Verify.pp_error e;
      exit 1

(* The built-in selftest tenants: a 3-extension chain whose composed verdict
   depends only on per-flow state, so any shard count must produce the same
   aggregate verdict histogram (flows are partitioned, never split). *)
let selftest_filter = {|
fn prog(c: ctx) -> u64 {
  var flow: u64 = pkt_read_u64(c, 1);
  var low: u64 = flow & 7;
  if (low == 0) { return 1; }
  return 2;
}
|}

let selftest_counter_body = {|
struct node { key: u64; count: u64; next: ptr<node>; }
global buckets: [ptr<node>; 256];

fn bump(k: u64) -> u64 {
  var b: u64 = k & 255;
  var n: ptr<node> = buckets[b];
  while (n != null) {
    if (n.key == k) { n.count = n.count + 1; return n.count; }
    n = n.next;
  }
  var m: ptr<node> = new node;
  if (m == null) { return 0; }
  m.key = k;
  m.count = 1;
  m.next = buckets[b];
  buckets[b] = m;
  return 1;
}
|}

let selftest_counter = selftest_counter_body ^ {|
fn prog(c: ctx) -> u64 {
  var flow: u64 = pkt_read_u64(c, 1);
  var n: u64 = bump(flow);
  if (n == 0) { return 0; }
  return 2;
}
|}

let selftest_capper = selftest_counter_body ^ {|
fn prog(c: ctx) -> u64 {
  var flow: u64 = pkt_read_u64(c, 1);
  var n: u64 = bump(flow);
  if (n > 96) { return 1; }
  return 2;
}
|}

let selftest_progs =
  [ ("filter", selftest_filter); ("counter", selftest_counter);
    ("capper", selftest_capper) ]

let attach_selftest eng =
  List.iter
    (fun (name, src) ->
      let c = Kflex_eclang.Compile.compile_string ~name src in
      match
        Engine.attach eng ~name
          ~globals_size:
            c.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
          ~heap_size:(Int64.shift_left 1L 20)
          ~hook:Kflex_kernel.Hook.Xdp c.Kflex_eclang.Compile.prog
      with
      | Ok _ -> ()
      | Error e ->
          Format.kasprintf failwith "selftest program %s rejected: %a" name
            Kflex_verifier.Verify.pp_error e)
    selftest_progs

(* Deterministic event stream: flow id in the payload (what the tenants
   key on), flow-derived ports (what the engine hashes for placement). *)
let selftest_packets ~seed ~events =
  let rng = Kflex_workload.Rng.create ~seed in
  Array.init events (fun _ ->
      let flow = Kflex_workload.Rng.int rng 512 in
      let b = Bytes.make 17 '\000' in
      Bytes.set_int64_le b 1 (Int64.of_int flow);
      Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp
        ~src_port:(1024 + (flow * 97 mod 60000))
        ~dst_port:9 b)

let pp_totals ppf (t : Engine.totals) =
  Format.fprintf ppf "%d events, %d cancelled, %d leaked; verdicts [%s]"
    t.Engine.events t.Engine.cancelled t.Engine.leaked
    (String.concat "; "
       (List.map
          (fun (v, n) -> Printf.sprintf "%Ld: %d" v n)
          t.Engine.verdicts))

let serve_cmd =
  let attach =
    Arg.(value & opt_all string [] & info [ "attach" ] ~docv:"FILE"
           ~doc:"Extension to attach to the XDP chain (repeatable, in order)")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N"
           ~doc:"Number of per-CPU shards")
  in
  let events =
    Arg.(value & opt int 50_000 & info [ "events" ] ~docv:"K"
           ~doc:"Synthetic events to deliver")
  in
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"N"
           ~doc:"Event-stream seed (the run is deterministic in it)")
  in
  let threaded =
    Arg.(value & flag & info [ "threaded" ]
           ~doc:"One OCaml domain per shard instead of deterministic mode")
  in
  let quantum =
    Arg.(value & opt (some int) None & info [ "quantum" ] ~docv:"COST"
           ~doc:"Per-invocation cost budget (watchdog quantum)")
  in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Attach the built-in 3-tenant chain and assert the N-shard \
                 aggregate verdict histogram matches a 1-shard run, with \
                 zero leaked resources")
  in
  let open_loop =
    Arg.(value & flag & info [ "open-loop" ]
           ~doc:"Open-loop serving mode: Zipfian requests on an arrival \
                 schedule, encoded to real wire-protocol bytes, parsed off \
                 per-connection rings and multiplexed onto the shards. \
                 Latency runs from each request's scheduled generation time \
                 (no coordinated omission).")
  in
  let rate =
    Arg.(value & opt float 150_000.0 & info [ "rate" ] ~docv:"RPS"
           ~doc:"Offered load in requests/second (open-loop mode)")
  in
  let conns =
    Arg.(value & opt int 512 & info [ "conns" ] ~docv:"N"
           ~doc:"Simulated connections, each with its own byte ring and \
                 protocol decoder (open-loop mode)")
  in
  let dist =
    Arg.(value & opt (enum [ ("poisson", `Poisson); ("bursty", `Bursty) ])
           `Poisson
         & info [ "dist" ] ~docv:"DIST"
             ~doc:"Arrival process: $(b,poisson) or $(b,bursty) \
                   (Pareto on-off, heavy-tailed)")
  in
  let duration =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Schedule length; requests = rate x duration (open-loop \
                 mode)")
  in
  let proto =
    Arg.(value
         & opt (enum [ ("memcached", `Memcached); ("redis", `Redis) ])
             `Memcached
         & info [ "proto" ] ~docv:"PROTO"
             ~doc:"Wire protocol: $(b,memcached) (binary, XDP) or \
                   $(b,redis) (RESP, sk_skb)")
  in
  let run_open_loop ~shards ~seed ~threaded ~rate ~conns ~dist ~duration
      ~proto =
    let module OL = Kflex_serve.Open_loop in
    let requests = int_of_float (rate *. duration) in
    if requests <= 0 then begin
      Format.eprintf "serve: rate x duration yields no requests@.";
      exit 2
    end;
    let cfg =
      {
        OL.default with
        OL.proto =
          (match proto with
          | `Memcached -> Kflex_serve.Wire.Memcached
          | `Redis -> Kflex_serve.Wire.Redis);
        rate;
        conns;
        requests;
        seed;
        arrival =
          (match dist with
          | `Poisson -> Kflex_workload.Arrivals.Poisson
          | `Bursty -> Kflex_workload.Arrivals.default_bursty);
      }
    in
    Format.printf
      "open loop: %s over %d conns, %.0f req/s %s for %.2fs (%d requests), \
       %d shard(s), %s@."
      (match proto with `Memcached -> "memcached" | `Redis -> "redis")
      conns rate
      (match dist with `Poisson -> "poisson" | `Bursty -> "bursty")
      duration requests shards
      (if threaded then "threaded wall clock" else "deterministic virtual time");
    let o =
      if threaded then OL.run_threaded ~shards cfg
      else OL.run_deterministic ~shards cfg
    in
    Format.printf "  achieved %.0f req/s (offered %.0f) over %.2fs@."
      o.OL.achieved_rps o.OL.offered_rps o.OL.span_s;
    Format.printf "  latency us: mean %.1f  p50 %.1f  p99 %.1f  p999 %.1f@."
      o.OL.mean_us o.OL.p50_us o.OL.p99_us o.OL.p999_us;
    Format.printf "  completed %d, cancelled %d, leaked %d%s@." o.OL.completed
      o.OL.cancelled o.OL.leaked
      (if threaded then ""
       else Printf.sprintf ", verdict digest %Lx" o.OL.digest);
    if o.OL.leaked <> 0 then exit 1
  in
  let run attach shards events seed threaded quantum selftest open_loop rate
      conns dist duration proto heap_bits =
    handle_errors (fun () ->
        if open_loop then
          run_open_loop ~shards ~seed ~threaded ~rate ~conns ~dist ~duration
            ~proto
        else begin
        let mode = if threaded then `Threaded else `Deterministic in
        let pkts = selftest_packets ~seed ~events in
        let drive eng =
          (match Engine.mode eng with
          | `Deterministic ->
              Array.iter (fun p -> ignore (Engine.run_packet eng p)) pkts
          | `Threaded ->
              Array.iter (fun p -> Engine.submit eng p) pkts;
              Engine.drain eng);
          let t = Engine.totals eng in
          let refs = Engine.socket_refs eng in
          Engine.shutdown eng;
          (t, refs)
        in
        if selftest then begin
          let eng = Engine.create ~shards ~mode ?quantum () in
          attach_selftest eng;
          let t_n, refs_n = drive eng in
          let one = Engine.create ~shards:1 ?quantum () in
          attach_selftest one;
          let t_1, refs_1 = drive one in
          Format.printf "%d shards%s: %a@." shards
            (if threaded then " (threaded)" else "")
            pp_totals t_n;
          Format.printf "1 shard:  %a@." pp_totals t_1;
          let ok =
            t_n.Engine.verdicts = t_1.Engine.verdicts
            && t_n.Engine.events = events
            && t_1.Engine.events = events
            && t_n.Engine.leaked = 0 && t_1.Engine.leaked = 0
            && refs_n = 0 && refs_1 = 0
          in
          if ok then Format.printf "selftest OK@."
          else begin
            Format.printf
              "selftest FAILED (socket refs %d vs %d; histograms %s)@." refs_n
              refs_1
              (if t_n.Engine.verdicts = t_1.Engine.verdicts then "equal"
               else "DIFFER");
            exit 1
          end
        end
        else begin
          if attach = [] then begin
            Format.eprintf "serve: nothing to attach (use --attach or --selftest)@.";
            exit 2
          end;
          let eng = Engine.create ~shards ~mode ?quantum () in
          List.iter
            (fun f -> ignore (attach_file eng ?quantum ~heap_bits f))
            attach;
          let t, refs = drive eng in
          Format.printf "%a@." pp_totals t;
          Format.printf "socket refs %d; per-shard events [%s]@." refs
            (String.concat "; "
               (List.init shards (fun s ->
                    string_of_int (Engine.shard_events eng s))))
        end
        end)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Drive a multi-tenant engine: N per-CPU shards, an XDP hook chain \
          of attached extensions, flow-hashed event placement and a \
          deterministic synthetic event stream. $(b,--selftest) checks \
          shard-count invariance of the built-in 3-tenant chain; \
          $(b,--open-loop) serves Zipfian wire-protocol traffic from an \
          open-loop generator and reports generation-to-verdict latency.")
    Term.(const run $ attach $ shards $ events $ seed $ threaded $ quantum
          $ selftest $ open_loop $ rate $ conns $ dist $ duration $ proto
          $ heap_size_arg)

let chain_cmd =
  let files =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE"
           ~doc:"Extensions, attached to the XDP chain in argument order")
  in
  let payload =
    Arg.(value & opt string "" & info [ "payload" ] ~docv:"HEX"
           ~doc:"Packet payload as hex bytes")
  in
  let quantum =
    Arg.(value & opt (some int) None & info [ "quantum" ] ~docv:"COST"
           ~doc:"Per-invocation cost budget (watchdog quantum)")
  in
  let run files payload quantum heap_bits =
    handle_errors (fun () ->
        let eng = Engine.create ~shards:1 ?quantum () in
        let handles =
          List.map (fun f -> attach_file eng ?quantum ~heap_bits f) files
        in
        let bytes =
          if payload = "" then Bytes.make 64 '\000'
          else
            Bytes.init
              (String.length payload / 2)
              (fun i ->
                Char.chr (int_of_string ("0x" ^ String.sub payload (2 * i) 2)))
        in
        let pkt =
          Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp ~src_port:1
            ~dst_port:2 bytes
        in
        let r = Engine.run_packet eng pkt in
        List.iteri
          (fun i o ->
            let name =
              match List.nth_opt handles i with
              | Some h -> Engine.handle_name h
              | None -> Printf.sprintf "#%d" i
            in
            match o with
            | Kflex_runtime.Vm.Finished v ->
                Format.printf "  %-20s ret=%Ld%s@." name v
                  (if Kflex_engine.Chain.continue_on Kflex_kernel.Hook.Xdp v
                   then "" else "  (chain stops here)")
            | Kflex_runtime.Vm.Cancelled { orig_pc; ret; _ } ->
                Format.printf "  %-20s CANCELLED at pc %d, ret=%Ld@." name
                  orig_pc ret)
          r.Engine.outcomes;
        Format.printf "verdict %Ld (%d of %d ran, cost %d)@." r.Engine.verdict
          r.Engine.executed (List.length files) r.Engine.cost)
  in
  Cmd.v
    (Cmd.info "chain"
       ~doc:
         "Run one packet through an ad-hoc XDP chain and print each \
          extension's verdict and where composition stopped.")
    Term.(const run $ files $ payload $ quantum $ heap_size_arg)

let () =
  let info = Cmd.info "kflexc" ~doc:"KFlex extension toolchain" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; disasm_cmd; verify_cmd; lint_cmd; report_cmd; run_cmd;
            fuzz_cmd; replay_cmd; serve_cmd; chain_cmd ]))
